"""Tests for reporting, rendering, and the experiment harness."""

import math
import os

import pytest

from repro.analysis import (
    Table,
    render_tree,
    run_instance,
    save_text,
    table1,
    table2,
    table3,
    table4,
)
from repro.analysis.experiments import InstanceResult
from repro.core.msri import insert_repeaters
from repro.netgen import (
    paper_instance,
    paper_technology,
    repeater_insertion_options,
)
from repro.tech import Repeater

from .conftest import y_net


class TestTable:
    def test_render_contains_everything(self):
        t = Table("demo", ["a", "bee"])
        t.add_row(1, 2.5)
        t.add_row("xy", 1000.0)
        t.add_note("a note")
        out = t.render()
        assert "demo" in out
        assert "bee" in out
        assert "2.500" in out
        assert "note: a note" in out

    def test_row_width_checked(self):
        t = Table("demo", ["a"])
        with pytest.raises(ValueError):
            t.add_row(1, 2)

    def test_float_formats(self):
        t = Table("demo", ["x"])
        t.add_row(3.0)
        t.add_row(1234.5678)
        t.add_row(0.123456)
        out = t.render()
        assert "3.0" in out
        assert "1235" in out
        assert "0.123" in out

    def test_non_finite_floats_render(self):
        # regression: a size group where every rep_cost_at_sizing_ard is
        # None averages to NaN and must render, not raise
        t = Table("demo", ["x"])
        t.add_row(float("nan"))
        t.add_row(float("inf"))
        assert t.render().count("n/a") == 2

    def test_table2_all_unmatched_costs_render(self):
        import dataclasses

        from ._campaign_faults import fake_instance

        r = dataclasses.replace(
            fake_instance(0, 4, 800.0), rep_cost_at_sizing_ard=None
        )
        assert "n/a" in table2([r]).render()

    def test_save_text(self, tmp_path):
        path = save_text("t.txt", "hello", directory=str(tmp_path))
        with open(path) as fh:
            assert fh.read() == "hello\n"


class TestRender:
    def test_contains_terminals_and_legend(self):
        out = render_tree(y_net())
        assert "legend:" in out
        for ch in "abc":
            assert ch in out

    def test_repeater_marker(self):
        from repro.netgen import paper_technology

        tree = paper_instance(0, 4)
        res = insert_repeaters(
            tree, paper_technology(), repeater_insertion_options()
        )
        best = res.min_ard()
        reps = {
            k: v for k, v in best.assignment().items() if isinstance(v, Repeater)
        }
        if reps:  # the fastest solution on this instance uses repeaters
            out = render_tree(tree, reps)
            assert "#" in out

    def test_dimensions(self):
        out = render_tree(y_net(), width=40, height=10)
        lines = out.splitlines()
        assert all(len(line) <= 40 for line in lines[:10])


class TestExperimentHarness:
    @pytest.fixture(scope="class")
    def small_result(self):
        # 4-pin instance keeps the harness test fast
        return run_instance(seed=0, n_pins=4)

    def test_instance_result_fields(self, small_result):
        r = small_result
        assert r.n_pins == 4
        assert r.base_cost == pytest.approx(8.0)  # 2 per pin
        assert r.base_ard > 0
        assert r.sizing_min_ard <= r.base_ard + 1e-9
        assert r.rep_min_ard <= r.base_ard + 1e-9
        assert r.rep_runtime_s > 0 and r.sizing_runtime_s > 0

    def test_repeaters_beat_sizing_on_diameter(self, small_result):
        # the paper's headline qualitative result
        assert small_result.rep_min_ard <= small_result.sizing_min_ard + 1e-9

    def test_matching_cost_defined(self, small_result):
        r = small_result
        assert r.rep_cost_at_sizing_ard is not None
        assert r.rep_cost_at_sizing_ard <= r.rep_min_ard_cost + 1e-9

    def test_tables_render(self, small_result):
        rows = [small_result]
        for table in (table2(rows), table3(rows), table4(rows)):
            out = table.render()
            assert "4" in out
        t1 = table1().render()
        assert "ohm/um" in t1

    def test_table2_normalization(self, small_result):
        out = table2([small_result]).render()
        # normalized diameters are < 1 for any net where optimization helps
        assert "Table II" in out
