"""Tests for the van Ginneken and greedy baselines.

The key cross-validations:

* MSRI restricted to a single-source net reproduces the classic van
  Ginneken cost/delay frontier exactly (independent implementation);
* the greedy baseline is never better than the optimal DP at any cost.
"""

import numpy as np
import pytest

from repro.baselines import greedy_insertion, van_ginneken
from repro.core.msri import MSRIOptions, insert_repeaters
from repro.rctree import TreeBuilder
from repro.rctree.topology import Node, NodeKind, RoutingTree
from repro.tech import Buffer, Repeater, RepeaterLibrary, Technology

from .conftest import make_terminal, random_topology, two_pin_net

TECH = Technology(0.1, 0.01, name="test")
BUF = Buffer("b", intrinsic_delay=20.0, output_resistance=50.0, input_capacitance=0.25)
REP = Repeater.from_buffer_pair(BUF, name="rep")
LIB = RepeaterLibrary([REP])


def single_source_version(tree):
    """Copy of the tree where only the root terminal drives."""
    nodes = []
    for n in tree.nodes:
        if n.kind is NodeKind.TERMINAL:
            term = (
                n.terminal.as_source_only()
                if n.index == tree.root
                else n.terminal.as_sink_only()
            )
            nodes.append(Node(n.index, n.x, n.y, n.kind, term))
        else:
            nodes.append(n)
    return RoutingTree(
        nodes,
        [tree.parent(i) for i in range(len(tree))],
        [tree.edge_length(i) for i in range(len(tree))],
    )


class TestVanGinneken:
    def test_two_pin_line(self):
        t = single_source_version(two_pin_net(length=4000.0))
        suite = van_ginneken(t, TECH, [BUF])
        assert len(suite) == 2  # unbuffered + one buffer
        assert suite[0].cost == 0.0
        assert suite[1].cost == 1.0
        assert suite[1].delay < suite[0].delay

    def test_requires_source_root(self):
        t = two_pin_net()
        t_sinks = single_source_version(t)
        # reroot at a sink: root is no longer a source
        other = [i for i in t_sinks.terminal_indices() if i != t_sinks.root][0]
        with pytest.raises(ValueError, match="source"):
            van_ginneken(t_sinks.rerooted(other), TECH, [BUF])

    def test_rejects_multisource(self):
        t = two_pin_net()
        with pytest.raises(ValueError, match="single-source"):
            van_ginneken(t, TECH, [BUF])

    def test_frontier_monotone(self):
        rng = np.random.default_rng(0)
        t = single_source_version(random_topology(rng, 6, p_insertion=0.8))
        suite = van_ginneken(t, TECH, [BUF, BUF.scaled(2)])
        costs = [s.cost for s in suite]
        delays = [s.delay for s in suite]
        assert costs == sorted(costs)
        assert delays == sorted(delays, reverse=True)

    @pytest.mark.parametrize("seed", range(10))
    def test_msri_degenerates_to_van_ginneken(self, seed):
        """The central cross-check: on single-source nets the multisource DP
        must reproduce the classic algorithm's frontier."""
        rng = np.random.default_rng(seed)
        t = single_source_version(random_topology(rng, 5, p_insertion=0.8))
        vg = [(s.cost, s.delay) for s in van_ginneken(t, TECH, [BUF])]
        # MSRI with the symmetric pair repeater: same downward electrical
        # behaviour; repeater cost = 2 (pair), so rescale VG's buffer cost
        res = insert_repeaters(t, TECH, MSRIOptions(library=LIB))
        msri = [(c / REP.cost, a) for c, a in res.tradeoff()]
        assert len(msri) == len(vg)
        for (c1, d1), (c2, d2) in zip(msri, vg):
            assert c1 == pytest.approx(c2)
            assert d1 == pytest.approx(d2, rel=1e-9)

    def test_buffer_placements_recorded(self):
        t = single_source_version(two_pin_net(length=4000.0))
        suite = van_ginneken(t, TECH, [BUF])
        buffered = suite[-1]
        assert len(buffered.placements) == 1
        node, buf = buffered.placements[0]
        assert node in t.insertion_indices()
        assert buf is BUF


class TestGreedy:
    def test_starts_unbuffered(self):
        t = two_pin_net(length=4000.0)
        steps = greedy_insertion(t, TECH, LIB)
        assert steps[0].cost == 0.0
        assert steps[0].assignment == {}

    def test_monotone_improvement(self):
        rng = np.random.default_rng(1)
        t = random_topology(rng, 5, p_insertion=0.8)
        steps = greedy_insertion(t, TECH, LIB)
        ards = [s.ard for s in steps]
        assert ards == sorted(ards, reverse=True)
        costs = [s.cost for s in steps]
        assert costs == sorted(costs)

    def test_budget_respected(self):
        t = two_pin_net(length=4000.0)
        steps = greedy_insertion(t, TECH, LIB, max_cost=2.0)
        assert steps[-1].cost <= 2.0

    def test_max_steps(self):
        rng = np.random.default_rng(2)
        t = random_topology(rng, 6, p_insertion=1.0)
        steps = greedy_insertion(t, TECH, LIB, max_steps=1)
        assert len(steps) <= 2

    @pytest.mark.parametrize("seed", range(6))
    def test_never_beats_optimal(self, seed):
        """At every cost the greedy trajectory is >= the optimal frontier."""
        rng = np.random.default_rng(10 + seed)
        t = random_topology(rng, 5, p_insertion=0.8)
        optimal = insert_repeaters(t, TECH, MSRIOptions(library=LIB))
        for step in greedy_insertion(t, TECH, LIB):
            best_at_cost = min(
                (s.ard for s in optimal.solutions if s.cost <= step.cost + 1e-9),
            )
            assert step.ard >= best_at_cost - 1e-6

    def test_greedy_can_be_suboptimal_somewhere(self):
        """Existence check across seeds: the greedy gap is real, which is
        what makes the optimal DP worth having."""
        gaps = []
        for seed in range(15):
            rng = np.random.default_rng(100 + seed)
            t = random_topology(rng, 5, p_insertion=0.9)
            optimal = insert_repeaters(t, TECH, MSRIOptions(library=LIB))
            steps = greedy_insertion(t, TECH, LIB)
            final = steps[-1]
            best = min(
                s.ard for s in optimal.solutions if s.cost <= final.cost + 1e-9
            )
            gaps.append(final.ard - best)
        assert max(gaps) >= 0.0  # sanity
        # (strict suboptimality is instance-dependent; we only require that
        # the greedy never undercuts and that the harness measures the gap)
        assert all(g >= -1e-6 for g in gaps)
