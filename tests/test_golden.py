"""Golden regression tests: exact values of the seeded paper workloads.

These pin the measured numbers of specific seeded instances (the same ones
EXPERIMENTS.md reports).  They exist to catch *accidental model drift*: any
change to the delay model, topology generation, insertion-point rule, or
technology constants that silently shifts results will fail here first,
loudly, rather than surfacing as a mysterious benchmark delta.

If a change is *intentional* (a documented model fix), update these
constants together with EXPERIMENTS.md in the same commit.
"""

import pytest

from repro.core.ard import ard
from repro.core.driver_sizing import apply_option_to_tree
from repro.core.msri import insert_repeaters
from repro.netgen import (
    find_fig11_seed,
    fixed_1x_option,
    paper_instance,
    paper_technology,
    repeater_insertion_options,
)

TECH = paper_technology()


class TestGoldenInstances:
    def test_seed0_10pin_geometry(self):
        tree = paper_instance(0, 10)
        assert len(tree) == 60
        assert len(tree.insertion_indices()) == 42
        assert tree.total_wire_length() == pytest.approx(28458.0, abs=1.0)

    def test_seed0_10pin_unbuffered_ard(self):
        tree = paper_instance(0, 10)
        dressed = apply_option_to_tree(tree, fixed_1x_option())
        assert ard(dressed, TECH).value == pytest.approx(4817.7, abs=0.5)

    def test_seed0_10pin_frontier_endpoints(self):
        tree = paper_instance(0, 10)
        res = insert_repeaters(tree, TECH, repeater_insertion_options())
        assert res.min_cost().cost == pytest.approx(20.0)
        assert res.min_cost().ard == pytest.approx(4817.7, abs=0.5)
        assert res.min_ard().ard == pytest.approx(2164.9, abs=0.5)

    def test_fig11_seed_and_wirelength(self):
        seed = find_fig11_seed()
        assert seed == 1
        tree = paper_instance(seed, 8)
        assert tree.total_wire_length() == pytest.approx(19600.0, abs=800.0)

    def test_fig11_progression(self):
        tree = paper_instance(find_fig11_seed(), 8)
        res = insert_repeaters(tree, TECH, repeater_insertion_options())
        dressed_base = res.min_cost().ard
        assert dressed_base == pytest.approx(2717.0, abs=1.0)
        two = res.with_repeater_count(2)
        five = res.with_repeater_count(5)
        assert two is not None and two.ard == pytest.approx(1966.0, abs=1.0)
        assert five is not None and five.ard == pytest.approx(1639.0, abs=1.0)

    def test_technology_constants_pinned(self):
        assert TECH.unit_resistance == 0.076
        assert TECH.unit_capacitance == 0.000118
        opt = fixed_1x_option()
        assert opt.arrival_penalty == pytest.approx(20.0)
        assert opt.sink_delay_extra == pytest.approx(130.0)
