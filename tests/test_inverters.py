"""Tests for the inverter-repeater extension (paper Sec. V).

The paper notes that "an extension allowing the use of inverters as
repeaters is possible and straightforward".  On a bus, every source-sink
path must cross an even number of inversions, which on a tree reduces to a
single parity bit per subtree (all terminals must share one inversion
parity relative to the root).  These tests validate the DP's parity
tracking against an exhaustive oracle that filters out parity-infeasible
assignments.
"""

import numpy as np
import pytest

from repro.analysis.exhaustive import exhaustive_frontier, is_parity_feasible
from repro.core.msri import MSRIOptions, insert_repeaters
from repro.tech import Buffer, Repeater, RepeaterLibrary, Technology

from .conftest import random_topology, two_pin_net

TECH = Technology(0.1, 0.01, name="test")

# an inverter is roughly half a buffer: half the cost, lower delay
INV = Buffer("inv", intrinsic_delay=10.0, output_resistance=50.0,
             input_capacitance=0.25, cost=0.5, is_inverting=True)
BUF = Buffer("buf", intrinsic_delay=20.0, output_resistance=50.0,
             input_capacitance=0.25, cost=1.0)

INV_REP = Repeater.from_buffer_pair(INV, name="invrep")
BUF_REP = Repeater.from_buffer_pair(BUF, name="bufrep")
INV_LIB = RepeaterLibrary([INV_REP])
MIXED_LIB = RepeaterLibrary([INV_REP, BUF_REP])


def frontiers_equal(dp, ex, tol=1e-6):
    return len(dp) == len(ex) and all(
        abs(a[0] - b[0]) <= tol and abs(a[1] - b[1]) <= tol for a, b in zip(dp, ex)
    )


class TestParityFeasibility:
    def test_no_inverters_always_feasible(self):
        t = two_pin_net()
        m = t.insertion_indices()[0]
        assert is_parity_feasible(t, {})
        assert is_parity_feasible(t, {m: BUF_REP})

    def test_single_inverter_on_path_infeasible(self):
        t = two_pin_net()
        m = t.insertion_indices()[0]
        assert not is_parity_feasible(t, {m: INV_REP})

    def test_inverter_pair_on_path_feasible(self):
        from repro.steiner import add_insertion_points

        t = add_insertion_points(two_pin_net(length=2000.0, with_insertion=False),
                                 spacing=600.0)
        pts = t.insertion_indices()
        assert len(pts) >= 2
        assert is_parity_feasible(t, {pts[0]: INV_REP, pts[1]: INV_REP})
        assert not is_parity_feasible(t, {pts[0]: INV_REP})


class TestInverterRepeaterProperties:
    def test_inverting_pair_is_inverting(self):
        assert INV_REP.is_inverting
        assert not BUF_REP.is_inverting
        assert INV_REP.cost == pytest.approx(1.0)  # two half-cost inverters

    def test_reversed_keeps_polarity(self):
        assert INV_REP.reversed().is_inverting


class TestDPWithInverters:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_parity_filtered_exhaustive(self, seed):
        rng = np.random.default_rng(seed)
        t = random_topology(rng, n_terminals=4, p_insertion=0.8)
        dp = insert_repeaters(t, TECH, MSRIOptions(library=INV_LIB)).tradeoff()
        ex = exhaustive_frontier(t, TECH, INV_LIB)
        assert frontiers_equal(dp, ex), f"dp={dp}\nex={ex}"

    @pytest.mark.parametrize("seed", range(6))
    def test_mixed_library_matches_exhaustive(self, seed):
        rng = np.random.default_rng(100 + seed)
        t = random_topology(rng, n_terminals=4, p_insertion=0.6)
        dp = insert_repeaters(t, TECH, MSRIOptions(library=MIXED_LIB)).tradeoff()
        ex = exhaustive_frontier(t, TECH, MIXED_LIB)
        assert frontiers_equal(dp, ex), f"dp={dp}\nex={ex}"

    @pytest.mark.parametrize("seed", range(6))
    def test_all_solutions_parity_feasible(self, seed):
        rng = np.random.default_rng(200 + seed)
        t = random_topology(rng, n_terminals=5, p_insertion=0.8)
        res = insert_repeaters(t, TECH, MSRIOptions(library=MIXED_LIB))
        for s in res.solutions:
            reps = {
                k: v for k, v in s.assignment().items() if isinstance(v, Repeater)
            }
            assert is_parity_feasible(t, reps)

    def test_inverters_must_come_in_path_pairs(self):
        """On a two-pin line every feasible solution uses an even number of
        inverting repeaters."""
        from repro.steiner import add_insertion_points

        t = add_insertion_points(
            two_pin_net(length=4000.0, with_insertion=False), spacing=700.0
        )
        res = insert_repeaters(t, TECH, MSRIOptions(library=INV_LIB))
        for s in res.solutions:
            n_inverting = sum(
                1
                for v in s.assignment().values()
                if isinstance(v, Repeater) and v.is_inverting
            )
            assert n_inverting % 2 == 0

    def test_cheap_inverters_can_beat_buffers(self):
        """With a mixed library the frontier is at least as good as with
        buffers alone at every cost (more options never hurt an exact DP)."""
        rng = np.random.default_rng(42)
        t = random_topology(rng, n_terminals=5, p_insertion=0.9)
        buf_only = insert_repeaters(t, TECH, MSRIOptions(library=RepeaterLibrary([BUF_REP])))
        mixed = insert_repeaters(t, TECH, MSRIOptions(library=MIXED_LIB))
        for cost, ardv in buf_only.tradeoff():
            best_mixed = min(
                s.ard for s in mixed.solutions if s.cost <= cost + 1e-9
            )
            assert best_mixed <= ardv + 1e-6
