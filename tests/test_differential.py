"""Differential property layer: linear-time ARD vs the all-pairs baseline.

The paper's Fig. 2 recursion computes the augmented RC-diameter in one
O(n) traversal; :func:`repro.baselines.pairwise.bruteforce_ard` walks
every (source, sink) path explicitly with no subtree decomposition.  The
two share only the Elmore engine, so agreement over hundreds of seeded
random nets — bare, repeater-laden, and with randomized boundary
penalties — pins the recursion down against an independent oracle.

The whole layer runs under ``REPRO_CHECK=1`` (forced via the contracts
context manager), so the runtime invariant contracts are armed for every
evaluation as well.
"""

from __future__ import annotations

import dataclasses
import math
import random

import pytest

from repro.baselines.pairwise import bruteforce_ard
from repro.check import contracts
from repro.core.ard import ard
from repro.rctree.engine import EvalContext
from repro.netgen.random_nets import random_net
from repro.netgen.workloads import (
    paper_net_spec,
    paper_repeater_library,
    paper_technology,
)
from repro.rctree.elmore import ElmoreAnalyzer
from repro.rctree.topology import Node, RoutingTree

N_NETS = 200
SPACING_CHOICES = (400.0, 800.0, 1600.0, None)


def _random_case(seed: int):
    """One seeded net plus a random (possibly empty) repeater assignment."""
    rng = random.Random(seed)
    n_pins = rng.randint(3, 7)
    spacing = SPACING_CHOICES[rng.randrange(len(SPACING_CHOICES))]
    tree = random_net(seed, n_pins, paper_net_spec(), spacing=spacing)
    options = paper_repeater_library().oriented_options()
    assignment = {
        idx: rng.choice(options)
        for idx in tree.insertion_indices()
        if rng.random() < 0.3
    }
    return tree, assignment


def _with_random_penalties(tree: RoutingTree, rng: random.Random) -> RoutingTree:
    """The same topology with randomized per-terminal alpha/beta."""
    nodes = []
    for node in tree.nodes:
        if node.terminal is None:
            nodes.append(node)
            continue
        term = dataclasses.replace(
            node.terminal,
            arrival_time=rng.uniform(0.0, 200.0),
            downstream_delay=rng.uniform(0.0, 200.0),
        )
        nodes.append(Node(node.index, node.x, node.y, node.kind, term))
    parent = [tree.parent(i) for i in range(len(tree))]
    lengths = [tree.edge_length(i) for i in range(len(tree))]
    return RoutingTree(nodes, parent, lengths)


def _assert_close(linear: float, brute: float, context) -> None:
    assert math.isclose(linear, brute, rel_tol=1e-9, abs_tol=1e-9), (
        f"{context}: linear {linear!r} != brute-force {brute!r}"
    )


class TestARDDifferential:
    def test_agrees_with_all_pairs_baseline_on_200_nets(self):
        tech = paper_technology()
        with contracts.checking():
            for seed in range(N_NETS):
                tree, assignment = _random_case(seed)
                linear = ard(tree, tech, context=EvalContext(assignment=assignment))
                brute = bruteforce_ard(tree, tech, assignment)
                _assert_close(linear.value, brute, f"seed {seed}")

    def test_agrees_under_random_boundary_penalties(self):
        tech = paper_technology()
        with contracts.checking():
            for seed in range(0, N_NETS, 4):
                rng = random.Random(10_000 + seed)
                tree, assignment = _random_case(seed)
                tree = _with_random_penalties(tree, rng)
                linear = ard(tree, tech, context=EvalContext(assignment=assignment))
                brute = bruteforce_ard(tree, tech, assignment)
                _assert_close(linear.value, brute, f"penalized seed {seed}")

    def test_critical_pair_achieves_the_reported_value(self):
        tech = paper_technology()
        with contracts.checking():
            for seed in range(0, N_NETS, 4):
                tree, assignment = _random_case(seed)
                context = EvalContext(assignment=assignment)
                result = ard(tree, tech, context=context)
                analyzer = ElmoreAnalyzer(tree, tech, context=context)
                src_t = tree.node(result.source).terminal
                snk_t = tree.node(result.sink).terminal
                achieved = (
                    src_t.arrival_time
                    + analyzer.path_delay(result.source, result.sink)
                    + snk_t.downstream_delay
                )
                _assert_close(result.value, achieved, f"argmax seed {seed}")

    def test_sink_only_terminals_keep_modes_consistent(self):
        """Mixed source/sink roles: the oracle honours the same role mask."""
        tech = paper_technology()
        with contracts.checking():
            for seed in range(0, N_NETS, 8):
                rng = random.Random(20_000 + seed)
                tree, assignment = _random_case(seed)
                nodes = []
                for node in tree.nodes:
                    term = node.terminal
                    # the root must stay a source for the net to be driveable
                    if (
                        term is not None
                        and node.index != tree.root
                        and rng.random() < 0.3
                    ):
                        term = term.as_sink_only()
                    nodes.append(
                        node
                        if term is node.terminal
                        else Node(node.index, node.x, node.y, node.kind, term)
                    )
                parent = [tree.parent(i) for i in range(len(tree))]
                lengths = [tree.edge_length(i) for i in range(len(tree))]
                masked = RoutingTree(nodes, parent, lengths)
                linear = ard(masked, tech, context=EvalContext(assignment=assignment))
                brute = bruteforce_ard(masked, tech, assignment)
                if not linear.is_finite:
                    assert brute == -math.inf
                    continue
                _assert_close(linear.value, brute, f"masked seed {seed}")
