"""Tests for bounded-growth MSRI pruning (docs/PRUNING.md).

Three layers under test:

* the allocation-free predictive classification (``leq_status`` /
  ``domain_subset``) against the exact region machinery it replicates;
* the pre-MFS candidate sweep (``prefilter_front``) and the end-to-end
  exact-mode bit-identity guarantee over randomized nets;
* the width/segment caps and their exact-by-default, lossy-by-consent
  contract, including the stats/observability accounting they share.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import contracts
from repro.core.intervals import IntervalSet
from repro.core.mfs import mfs
from repro.core.msri import (
    MSRIOptions,
    MSRIStats,
    _enforce_segment_budget,
    insert_repeaters,
    validate_msri_overrides,
)
from repro.core.prefilter import (
    LEQ_EMPTY,
    LEQ_FULL,
    LEQ_PARTIAL,
    domain_subset,
    leq_status,
    min_diam_lower_bound,
    prefilter_front,
)
from repro.core.pwl import PWL, Segment, max_segment_count
from repro.core.solution import Solution
from repro.netgen.random_nets import random_net
from repro.netgen.workloads import (
    paper_instance,
    paper_technology,
    repeater_insertion_options,
)
from repro.obs import core as obs

TECH = paper_technology()

C_MAX = 10.0


def sol(cost=0.0, cap=0.0, q=0.0, arr=None, diam=None, domain=None, parity=0):
    domain = domain or IntervalSet.single(0.0, C_MAX)
    return Solution(
        cost=cost, cap=cap, q=q, arr=arr, diam=diam, domain=domain, parity=parity
    )


def line(i, s, lo=0.0, hi=C_MAX):
    return PWL.linear(i, s, lo, hi)


# -- validate_msri_overrides ---------------------------------------------------


class TestValidateOverrides:
    def test_none_and_empty_pass_through(self):
        assert validate_msri_overrides(None) == {}
        assert validate_msri_overrides({}) == {}

    def test_known_knobs_round_trip(self):
        knobs = {
            "prefilter": False,
            "max_front_width": 8,
            "max_pwl_segments": 4,
            "spec": 1500.0,
            "lossy": True,
        }
        assert validate_msri_overrides(knobs) == knobs

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="max_width"):
            validate_msri_overrides({"max_width": 8})

    @pytest.mark.parametrize(
        "knobs",
        [
            {"max_front_width": 7.5},
            {"max_pwl_segments": "two"},
            {"spec": "fast"},
            {"spec": True},
        ],
    )
    def test_mistyped_values_rejected(self, knobs):
        with pytest.raises(ValueError):
            validate_msri_overrides(knobs)

    @pytest.mark.parametrize(
        "knobs",
        [
            # range checks live in MSRIOptions.__post_init__, which every
            # entry point funnels the validated overrides through
            {"max_front_width": 1},
            {"max_pwl_segments": 0},
        ],
    )
    def test_out_of_range_values_rejected_by_options(self, knobs):
        with pytest.raises(ValueError):
            repeater_insertion_options(**validate_msri_overrides(knobs))

    def test_options_reject_lossy_without_cap(self):
        with pytest.raises(ValueError, match="lossy"):
            repeater_insertion_options(lossy=True)

    def test_options_accept_lossy_with_cap(self):
        opts = repeater_insertion_options(max_front_width=4, lossy=True)
        assert isinstance(opts, MSRIOptions)


# -- leq_status vs the exact region machinery ---------------------------------


coeff = st.floats(min_value=-50, max_value=50, allow_nan=False)


@st.composite
def pwls(draw, max_pieces=4, x_max=20.0):
    """Random continuous PWL on [0, x_max] built from breakpoints."""
    n = draw(st.integers(min_value=2, max_value=max_pieces + 1))
    xs = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.01, max_value=x_max - 0.01),
                min_size=n - 2,
                max_size=n - 2,
                unique=True,
            )
        )
    )
    xs = [0.0] + xs + [x_max]
    ys = [draw(coeff) for _ in xs]
    return PWL.from_breakpoints(xs, ys)


@given(pwls(), pwls())
@settings(max_examples=200)
def test_leq_status_matches_region_oracle(f, g):
    """The classification must agree with the region it predicts.

    ``prune_one`` relies on exactly two implications: EMPTY means the
    region machinery would find nothing, FULL means it would return the
    whole common domain.  (PARTIAL pairs fall through to the machinery
    itself, so no claim is needed there.)
    """
    status = leq_status(f, g)
    common = f.domain().intersect(g.domain())
    region = f.region_leq(g).intersect(common)
    if status == LEQ_EMPTY:
        assert region.is_empty
    elif status == LEQ_FULL:
        assert region == common
    else:
        assert status == LEQ_PARTIAL


def test_leq_status_none_encoding():
    f = line(1.0, 0.0)
    assert leq_status(None, f) == LEQ_FULL  # -inf below everything
    assert leq_status(f, None) == LEQ_EMPTY  # finite never below -inf
    assert leq_status(None, None) == LEQ_FULL


def test_leq_status_single_segment_cases():
    low = line(0.0, 1.0)
    high = line(1.0, 1.0)
    crossing = line(5.0, 0.0)  # crosses `low` at x = 5
    assert leq_status(low, high) == LEQ_FULL
    assert leq_status(high, low) == LEQ_EMPTY
    assert leq_status(crossing, low) == LEQ_PARTIAL
    # disjoint domains: nowhere comparable
    left = line(0.0, 0.0, lo=0.0, hi=2.0)
    right = line(0.0, 0.0, lo=5.0, hi=8.0)
    assert leq_status(left, right) == LEQ_EMPTY


# -- domain_subset -------------------------------------------------------------


intervals_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=9.0),
        st.floats(min_value=0.0, max_value=9.0),
    ).map(lambda p: (min(p), max(p) + 0.5)),
    max_size=4,
)


@given(intervals_lists, intervals_lists)
@settings(max_examples=200)
def test_domain_subset_matches_intersection(pa, pb):
    a = IntervalSet.from_pairs(pa)
    b = IntervalSet.from_pairs(pb)
    assert domain_subset(a, b) == (a.intersect(b) == a)


def test_domain_subset_edges():
    full = IntervalSet.single(0.0, 10.0)
    holey = IntervalSet.from_pairs([(0.0, 3.0), (5.0, 10.0)])
    assert domain_subset(holey, full)
    assert not domain_subset(full, holey)  # the hole [3, 5] is uncovered
    assert domain_subset(IntervalSet.empty(), holey)
    assert domain_subset(holey, holey)


# -- prefilter_front -----------------------------------------------------------


@st.composite
def solution_lists(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    out = []
    # small grids on purpose: exact scalar ties must occur
    grid = st.sampled_from([0.0, 1.0, 2.0, 3.0])
    fun = st.one_of(
        st.none(),
        st.tuples(grid, st.sampled_from([0.0, 0.5, 1.0])).map(
            lambda p: line(p[0], p[1])
        ),
    )
    dom = st.sampled_from(
        [
            IntervalSet.single(0.0, C_MAX),
            IntervalSet.single(2.0, 8.0),
            IntervalSet.from_pairs([(0.0, 3.0), (5.0, C_MAX)]),
        ]
    )
    for _ in range(n):
        out.append(
            sol(
                cost=draw(grid),
                cap=draw(grid),
                q=draw(grid),
                arr=draw(fun),
                diam=draw(fun),
                domain=draw(dom),
                parity=draw(st.sampled_from([0, 1])),
            )
        )
    return out


@given(solution_lists())
@settings(max_examples=150, deadline=None)
def test_prefilter_front_preserves_the_mfs(sols):
    """Sweeping candidates first must not change the surviving front."""
    filtered = prefilter_front(sols)
    assert len(filtered) <= len(sols)
    contracts.verify_front_equivalence(
        mfs(filtered), mfs(sols), context="prefilter_front property"
    )


def test_prefilter_front_drops_certified_duplicates():
    base = sol(cost=1.0, cap=1.0, q=1.0, arr=line(0.0, 1.0), diam=line(0.0, 1.0))
    clone = sol(cost=1.0, cap=1.0, q=1.0, arr=line(0.0, 1.0), diam=line(0.0, 1.0))
    worse = sol(cost=2.0, cap=2.0, q=2.0, arr=line(1.0, 1.0), diam=line(1.0, 1.0))
    out = prefilter_front([base, clone, worse])
    assert [s.uid for s in out] == [base.uid]


def test_min_diam_lower_bound():
    s = sol(diam=PWL.from_breakpoints([0.0, 5.0, 10.0], [4.0, 2.0, 6.0]))
    assert min_diam_lower_bound(s) == 2.0
    assert min_diam_lower_bound(sol(diam=None)) == float("-inf")


# -- end-to-end exact-mode bit-identity ---------------------------------------


_FULL = os.environ.get("REPRO_FULL") == "1"
_CASES = [
    (seed, pins)
    for seed in range(40 if _FULL else 8)
    for pins in ((3, 4, 5, 6, 7) if _FULL else (3, 4, 5))
]


@pytest.mark.parametrize("seed,pins", _CASES)
def test_exact_mode_is_bit_identical(seed, pins):
    """Randomized nets: pre-filtered DP == pure Fig. 4 DP, field for field.

    Runs under REPRO_CHECK-style contracts, so every prune site is also
    re-derived against a prescreen-free MFS pass on the way
    (``verify_front_equivalence``).
    """
    tree = random_net(seed, pins)
    with contracts.checking(True):
        fast = insert_repeaters(tree, TECH, repeater_insertion_options())
    baseline = insert_repeaters(
        tree, TECH, repeater_insertion_options(prefilter=False)
    )
    assert fast.tradeoff() == baseline.tradeoff()
    assert fast.stats.solutions_generated == baseline.stats.solutions_generated
    assert (
        fast.stats.solutions_after_pruning
        == baseline.stats.solutions_after_pruning
    )
    assert fast.stats.max_set_size == baseline.stats.max_set_size


# -- the caps ------------------------------------------------------------------


@pytest.fixture(scope="module")
def small_net():
    return paper_instance(0, 5)


@pytest.fixture(scope="module")
def exact_result(small_net):
    return insert_repeaters(small_net, TECH, repeater_insertion_options())


class TestWidthCap:
    def test_exact_cap_never_changes_results(self, small_net, exact_result):
        with obs.observing():
            capped = insert_repeaters(
                small_net, TECH, repeater_insertion_options(max_front_width=8)
            )
            snap = obs.snapshot(reset=True)
        assert capped.tradeoff() == exact_result.tradeoff()
        assert capped.stats.max_set_size == exact_result.stats.max_set_size
        assert snap["counters"]["msri.cap.exceeded"] > 0

    def test_lossy_cap_bounds_front_and_stays_conservative(
        self, small_net, exact_result
    ):
        capped = insert_repeaters(
            small_net,
            TECH,
            repeater_insertion_options(max_front_width=8, lossy=True),
        )
        assert capped.stats.max_set_size <= 8
        # lossy may be suboptimal, never optimistic
        assert capped.min_ard().ard >= exact_result.min_ard().ard - 1e-12
        for cost, ard in capped.tradeoff():
            covered = [a for c, a in exact_result.tradeoff() if c <= cost]
            assert min(covered) <= ard + 1e-12

    def test_exact_cap_with_spec_preserves_the_query(
        self, small_net, exact_result
    ):
        spec = exact_result.min_ard().ard + 1.0
        capped = insert_repeaters(
            small_net,
            TECH,
            repeater_insertion_options(max_front_width=8, spec=spec),
        )
        want = exact_result.min_cost_meeting(spec)
        got = capped.min_cost_meeting(spec)
        assert want is not None and got is not None
        assert (got.cost, got.ard) == (want.cost, want.ard)

    def test_infeasible_spec_keeps_the_front(self, small_net, exact_result):
        capped = insert_repeaters(
            small_net,
            TECH,
            repeater_insertion_options(max_front_width=2, spec=1e-6),
        )
        # nothing meets the spec; exact mode must still report the frontier
        assert capped.tradeoff() == exact_result.tradeoff()
        assert capped.min_cost_meeting(1e-6) is None


class TestSegmentBudget:
    def test_exact_budget_never_changes_results(self, small_net, exact_result):
        with obs.observing():
            res = insert_repeaters(
                small_net, TECH, repeater_insertion_options(max_pwl_segments=1)
            )
            snap = obs.snapshot(reset=True)
        assert res.tradeoff() == exact_result.tradeoff()
        assert snap["counters"].get("pwl.segments.over_budget", 0) > 0

    def test_lossy_budget_bounds_segments_and_stays_conservative(
        self, small_net, exact_result
    ):
        res = insert_repeaters(
            small_net,
            TECH,
            repeater_insertion_options(
                max_pwl_segments=2, max_front_width=64, lossy=True
            ),
        )
        # lossy simplification may be suboptimal, never optimistic (the
        # hard bound is unit-tested below: holey functions are exempt)
        assert res.min_ard().ard >= exact_result.min_ard().ard - 1e-12

    def test_enforce_budget_bounds_and_upper_bounds(self):
        wavy = PWL.from_breakpoints(
            [0.0, 1.0, 2.0, 3.0, C_MAX], [0.0, 5.0, 1.0, 6.0, 0.0]
        )
        s = sol(arr=wavy)
        (slim,) = _enforce_segment_budget([s], 2, True, False)
        assert slim.uid == s.uid  # identity survives the rewrite
        assert max_segment_count((slim.arr, slim.diam)) <= 2
        for x in (0.0, 0.5, 1.0, 1.7, 2.5, 3.0, 7.0, C_MAX):
            assert slim.arr(x) >= wavy(x) - 1e-12

    def test_enforce_budget_never_bridges_holes(self):
        holey = PWL(
            (
                Segment(0.0, 2.0, 1.0, 0.0),
                Segment(4.0, 6.0, 2.0, 0.0),
                Segment(8.0, C_MAX, 3.0, 0.0),
            )
        )
        s = sol(arr=holey, domain=holey.domain())
        (kept,) = _enforce_segment_budget([s], 2, True, False)
        assert kept.arr == holey  # budget unreachable without bridging


# -- stats / observability unification ----------------------------------------


def test_stats_and_obs_share_one_accounting(small_net):
    with obs.observing():
        res = insert_repeaters(small_net, TECH, repeater_insertion_options())
        snap = obs.snapshot(reset=True)
    points = [p for p in snap["points"] if p["name"] == "msri.node"]
    assert len(points) == res.stats.nodes_processed
    gen = kept = pruned = 0
    for p in points:
        attrs = p["attrs"]
        # the conservation identity, per node
        assert attrs["generated"] == attrs["kept"] + attrs["pruned"]
        gen += attrs["generated"]
        kept += attrs["kept"]
        pruned += attrs["pruned"]
    # the per-node points, the aggregate counters, and MSRIStats all come
    # from the same record() call — they can never drift apart
    assert gen == res.stats.solutions_generated
    assert kept == res.stats.solutions_after_pruning
    assert snap["counters"]["msri.solutions.generated"] == gen
    assert snap["counters"]["msri.solutions.kept"] == kept
    assert snap["counters"]["msri.solutions.pruned"] == pruned
    assert snap["counters"]["msri.prefilter.examined"] >= gen


def test_front_width_p95():
    stats = MSRIStats()
    assert stats.front_width_p95() == 0
    for node, width in enumerate(range(1, 21)):  # widths 1..20
        stats.record(node, width, [sol() for _ in range(width)])
    assert stats.front_width_p95() == 20  # index min(19, 20*95//100) = 19
    assert stats.max_set_size == 20


def test_front_width_p95_reported(exact_result):
    widths = exact_result.stats.set_sizes.values()
    p95 = exact_result.stats.front_width_p95()
    assert min(widths) <= p95 <= max(widths)
