"""Tests for technology parameters, buffers, repeaters, and terminals."""

import math

import pytest

from repro.tech import (
    DEFAULT_BUFFER,
    DEFAULT_TECHNOLOGY,
    NEVER,
    Buffer,
    Repeater,
    RepeaterLibrary,
    Technology,
    Terminal,
    default_repeater_library,
    scaled_library,
)


class TestTechnology:
    def test_wire_quantities(self):
        t = Technology(0.1, 0.01)
        assert t.wire_resistance(100.0) == pytest.approx(10.0)
        assert t.wire_capacitance(100.0) == pytest.approx(1.0)

    def test_wire_delay_half_cap(self):
        t = Technology(0.1, 0.01)
        # R*(C/2 + load) = 10 * (0.5 + 2.0)
        assert t.wire_delay(100.0, 2.0) == pytest.approx(25.0)

    def test_zero_length_wire(self):
        t = Technology(0.1, 0.01)
        assert t.wire_delay(0.0, 5.0) == 0.0

    def test_rejects_negative_length(self):
        t = Technology(0.1, 0.01)
        with pytest.raises(ValueError):
            t.wire_delay(-1.0, 0.0)

    def test_rejects_bad_constants(self):
        with pytest.raises(ValueError):
            Technology(0.0, 0.01)
        with pytest.raises(ValueError):
            Technology(0.1, -0.01)

    def test_default_has_paper_anchors(self):
        assert DEFAULT_TECHNOLOGY.extras["prev_stage_resistance"] == 400.0
        assert DEFAULT_TECHNOLOGY.extras["next_stage_capacitance"] == 0.2

    def test_with_name(self):
        t = DEFAULT_TECHNOLOGY.with_name("other")
        assert t.name == "other"
        assert t.unit_resistance == DEFAULT_TECHNOLOGY.unit_resistance


class TestBuffer:
    def test_delay(self):
        b = Buffer("b", 10.0, 100.0, 0.05)
        assert b.delay(0.5) == pytest.approx(60.0)

    def test_delay_rejects_negative_load(self):
        with pytest.raises(ValueError):
            Buffer("b", 10.0, 100.0, 0.05).delay(-0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            Buffer("b", 10.0, 0.0, 0.05)
        with pytest.raises(ValueError):
            Buffer("b", -1.0, 100.0, 0.05)
        with pytest.raises(ValueError):
            Buffer("b", 10.0, 100.0, -0.05)

    def test_scaling_rule(self):
        """The paper's kX rule: cost k, resistance R/k, capacitance k*C."""
        b = Buffer("b", 10.0, 100.0, 0.05, cost=1.0)
        k3 = b.scaled(3.0)
        assert k3.cost == pytest.approx(3.0)
        assert k3.output_resistance == pytest.approx(100.0 / 3.0)
        assert k3.input_capacitance == pytest.approx(0.15)
        assert k3.intrinsic_delay == b.intrinsic_delay

    def test_scaled_library(self):
        lib = scaled_library(DEFAULT_BUFFER)
        assert [b.cost for b in lib] == [1.0, 2.0, 3.0, 4.0]
        assert lib[3].input_capacitance == pytest.approx(0.2)

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            DEFAULT_BUFFER.scaled(0.0)


class TestRepeater:
    def test_from_symmetric_pair(self):
        r = Repeater.from_buffer_pair(DEFAULT_BUFFER)
        assert r.is_symmetric
        assert r.cost == pytest.approx(2.0)  # two 1X halves
        assert r.c_a == r.c_b == DEFAULT_BUFFER.input_capacitance

    def test_from_asymmetric_pair(self):
        fwd = Buffer("f", 10.0, 100.0, 0.05)
        bwd = Buffer("g", 20.0, 50.0, 0.10)
        r = Repeater.from_buffer_pair(fwd, bwd)
        assert not r.is_symmetric
        assert r.d_ab == 10.0 and r.d_ba == 20.0
        assert r.r_ab == 100.0 and r.r_ba == 50.0
        assert r.c_a == 0.05 and r.c_b == 0.10

    def test_mixed_polarity_rejected(self):
        fwd = Buffer("f", 10.0, 100.0, 0.05)
        inv = Buffer("i", 10.0, 100.0, 0.05, is_inverting=True)
        with pytest.raises(ValueError, match="polarity"):
            Repeater.from_buffer_pair(fwd, inv)

    def test_reversed_swaps_sides(self):
        fwd = Buffer("f", 10.0, 100.0, 0.05)
        bwd = Buffer("g", 20.0, 50.0, 0.10)
        r = Repeater.from_buffer_pair(fwd, bwd)
        rr = r.reversed()
        assert rr.d_ab == r.d_ba and rr.r_ab == r.r_ba and rr.c_a == r.c_b
        assert rr.cost == r.cost
        # double reversal restores the original electrically
        rrr = rr.reversed()
        assert (rrr.d_ab, rrr.r_ab, rrr.c_a) == (r.d_ab, r.r_ab, r.c_a)

    def test_directional_delay(self):
        fwd = Buffer("f", 10.0, 100.0, 0.05)
        bwd = Buffer("g", 20.0, 50.0, 0.10)
        r = Repeater.from_buffer_pair(fwd, bwd)
        assert r.delay(a_to_b=True, load_pf=1.0) == pytest.approx(110.0)
        assert r.delay(a_to_b=False, load_pf=1.0) == pytest.approx(70.0)

    def test_input_cap_sides(self):
        r = Repeater.from_buffer_pair(
            Buffer("f", 10.0, 100.0, 0.05), Buffer("g", 20.0, 50.0, 0.10)
        )
        assert r.input_cap(a_side=True) == 0.05
        assert r.input_cap(a_side=False) == 0.10

    def test_validation(self):
        with pytest.raises(ValueError):
            Repeater("bad", 1.0, 0.0, 0.1, 1.0, 10.0, 0.1)


class TestRepeaterLibrary:
    def test_default_library(self):
        lib = default_repeater_library()
        assert len(lib) == 1
        assert lib["rep1x"].is_symmetric

    def test_oriented_options_dedups_symmetric(self):
        lib = default_repeater_library()
        assert len(lib.oriented_options()) == 1

    def test_oriented_options_includes_reversals(self):
        asym = Repeater.from_buffer_pair(
            Buffer("f", 10.0, 100.0, 0.05), Buffer("g", 20.0, 50.0, 0.10)
        )
        lib = RepeaterLibrary([asym])
        assert len(lib.oriented_options()) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RepeaterLibrary([])

    def test_duplicate_names_rejected(self):
        r = Repeater.from_buffer_pair(DEFAULT_BUFFER, name="x")
        with pytest.raises(ValueError):
            RepeaterLibrary([r, r])

    def test_getitem_missing(self):
        with pytest.raises(KeyError):
            default_repeater_library()["missing"]

    def test_min_cost(self):
        lib = RepeaterLibrary(
            [
                Repeater.from_buffer_pair(DEFAULT_BUFFER, name="a"),
                Repeater.from_buffer_pair(DEFAULT_BUFFER.scaled(2), name="b"),
            ]
        )
        assert lib.min_cost() == pytest.approx(2.0)


class TestTerminal:
    def test_roles(self):
        t = Terminal("t", 0, 0)
        assert t.is_source and t.is_sink
        assert not t.as_sink_only().is_source
        assert not t.as_source_only().is_sink

    def test_never_sentinel(self):
        assert NEVER == -math.inf

    def test_driver_delay(self):
        t = Terminal("t", 0, 0, resistance=200.0, intrinsic_delay=5.0)
        assert t.driver_delay(0.5) == pytest.approx(105.0)

    def test_driver_delay_requires_source(self):
        t = Terminal("t", 0, 0).as_sink_only()
        with pytest.raises(ValueError):
            t.driver_delay(0.5)

    def test_driver_delay_rejects_negative_load(self):
        with pytest.raises(ValueError):
            Terminal("t", 0, 0).driver_delay(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Terminal("t", 0, 0, capacitance=-1.0)
        with pytest.raises(ValueError):
            Terminal("t", 0, 0, resistance=0.0)
        with pytest.raises(ValueError):
            Terminal("t", 0, 0, arrival_time=math.nan)

    def test_moved(self):
        t = Terminal("t", 0, 0).moved(5.0, 6.0)
        assert t.position == (5.0, 6.0)
