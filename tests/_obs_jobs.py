"""Picklable job functions for the observability worker-merge tests.

``run_jobs(fn, ...)`` jobs cross process boundaries when ``workers >= 1``,
so everything the pool calls lives here as module-level functions (same
convention as ``tests/_campaign_faults.py``).
"""

from __future__ import annotations

from repro.obs import core as obs

_UNITS = obs.Counter("testobs.units")
_WIDTH = obs.Histogram("testobs.width")


def counting_job(seed: int, units: int) -> int:
    """Record *units* counter increments and one histogram observation."""
    with obs.trace("testobs.work", seed=seed):
        _UNITS.add(units)
        _WIDTH.observe(units)
    return seed * 1000 + units


def failing_job(seed: int, units: int) -> int:
    """Counts like :func:`counting_job`, then always raises."""
    _UNITS.add(units)
    raise ValueError(f"injected failure (seed={seed})")
