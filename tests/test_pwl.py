"""Unit and property tests for PWL functions and the paper's Eq. (3) primitives."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import IntervalSet
from repro.core.pwl import PWL, Segment, maximum_all


class TestSegment:
    def test_value(self):
        s = Segment(0.0, 10.0, 2.0, 3.0)
        assert s.value(0.0) == 2.0
        assert s.value(2.0) == 8.0

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            Segment(5.0, 4.0, 0.0, 0.0)

    def test_rejects_infinite_domain(self):
        with pytest.raises(ValueError):
            Segment(0.0, math.inf, 0.0, 0.0)

    def test_rejects_nonfinite_coeffs(self):
        with pytest.raises(ValueError):
            Segment(0.0, 1.0, math.inf, 0.0)

    def test_same_line(self):
        a = Segment(0, 1, 2.0, 3.0)
        b = Segment(1, 2, 2.0, 3.0)
        c = Segment(1, 2, 2.5, 3.0)
        assert a.same_line(b)
        assert not a.same_line(c)


class TestConstruction:
    def test_constant(self):
        f = PWL.constant(5.0, 0.0, 10.0)
        assert f.evaluate(0.0) == 5.0
        assert f.evaluate(10.0) == 5.0
        assert f.num_segments == 1

    def test_linear(self):
        f = PWL.linear(1.0, 2.0, 0.0, 4.0)
        assert f.evaluate(3.0) == 7.0

    def test_merges_collinear(self):
        f = PWL([Segment(0, 1, 1.0, 2.0), Segment(1, 2, 1.0, 2.0)])
        assert f.num_segments == 1
        assert f.segments[0].hi == 2.0

    def test_rejects_overlapping(self):
        with pytest.raises(ValueError):
            PWL([Segment(0, 2, 0, 0), Segment(1, 3, 1, 0)])

    def test_from_breakpoints(self):
        f = PWL.from_breakpoints([0, 1, 3], [0, 2, 2])
        assert f.evaluate(0.5) == pytest.approx(1.0)
        assert f.evaluate(2.0) == pytest.approx(2.0)
        assert f.num_segments == 2

    def test_from_breakpoints_rejects_short(self):
        with pytest.raises(ValueError):
            PWL.from_breakpoints([0], [1])

    def test_from_breakpoints_rejects_nonincreasing(self):
        with pytest.raises(ValueError):
            PWL.from_breakpoints([0, 0], [1, 2])

    def test_empty(self):
        f = PWL([])
        assert f.is_empty
        with pytest.raises(ValueError):
            f.evaluate(0.0)


class TestEvaluation:
    def test_outside_domain_raises(self):
        f = PWL.constant(1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            f.evaluate(2.0)

    def test_evaluate_or(self):
        f = PWL.constant(1.0, 0.0, 1.0)
        assert f.evaluate_or(2.0, default=-1.0) == -1.0
        assert f.evaluate_or(0.5, default=-1.0) == 1.0

    def test_holey_domain(self):
        f = PWL([Segment(0, 1, 0, 1), Segment(2, 3, 5, 0)])
        assert f.defined_at(0.5)
        assert not f.defined_at(1.5)
        assert f.evaluate(2.5) == 5.0
        assert f.domain() == IntervalSet.from_pairs([(0, 1), (2, 3)])

    def test_callable(self):
        f = PWL.linear(0.0, 2.0, 0.0, 1.0)
        assert f(0.5) == 1.0

    def test_min_max_value(self):
        f = PWL.from_breakpoints([0, 1, 2], [3, 1, 4])
        assert f.min_value() == (1.0, 1.0)
        assert f.max_value() == (2.0, 4.0)


class TestPrimitives:
    def test_add_scalar(self):
        f = PWL.linear(1.0, 2.0, 0.0, 5.0).add_scalar(10.0)
        assert f.evaluate(1.0) == 13.0

    def test_add_linear(self):
        f = PWL.linear(1.0, 2.0, 0.0, 5.0).add_linear(3.0, 4.0)
        # (1 + 2x) + (3 + 4x) = 4 + 6x
        assert f.evaluate(2.0) == pytest.approx(16.0)

    def test_shift_value_identity(self):
        f = PWL.from_breakpoints([0, 2, 5], [0, 4, 1])
        g = f.shift(1.0)
        for x in [0.0, 0.5, 1.0, 3.0, 4.0]:
            assert g.evaluate(x) == pytest.approx(f.evaluate(x + 1.0))

    def test_shift_clips_negative_domain(self):
        f = PWL.constant(1.0, 0.0, 2.0)
        g = f.shift(1.5)
        assert g.domain() == IntervalSet.single(0.0, 0.5)

    def test_shift_drops_vanished_segments(self):
        f = PWL.constant(1.0, 0.0, 1.0)
        assert f.shift(2.0).is_empty

    def test_restrict(self):
        f = PWL.linear(0.0, 1.0, 0.0, 10.0)
        g = f.restrict(IntervalSet.from_pairs([(1, 2), (5, 7)]))
        assert g.domain() == IntervalSet.from_pairs([(1, 2), (5, 7)])
        assert g.evaluate(6.0) == 6.0

    def test_restrict_to_empty(self):
        f = PWL.constant(0.0, 0.0, 1.0)
        assert f.restrict(IntervalSet.empty()).is_empty


class TestMaximum:
    def test_crossing_lines(self):
        # The Fig. 3 scenario: two arrival lines with slopes 7 and 12.
        # arr_u = 100 + 12x, arr_w = 130 + 7x cross at x = 6.
        f = PWL.linear(100.0, 12.0, 0.0, 20.0)
        g = PWL.linear(130.0, 7.0, 0.0, 20.0)
        m = f.maximum(g)
        assert m.num_segments == 2
        assert m.evaluate(0.0) == 130.0  # far source dominates at low c_E
        assert m.evaluate(10.0) == 220.0  # near-but-slow dominates at high c_E
        assert m.evaluate(6.0) == pytest.approx(172.0)

    def test_parallel_lines(self):
        f = PWL.linear(1.0, 2.0, 0.0, 5.0)
        g = PWL.linear(3.0, 2.0, 0.0, 5.0)
        assert f.maximum(g).approx_equal(g)

    def test_identical(self):
        f = PWL.linear(1.0, 2.0, 0.0, 5.0)
        assert f.maximum(f).approx_equal(f)

    def test_domain_intersection(self):
        f = PWL.constant(1.0, 0.0, 4.0)
        g = PWL.constant(2.0, 2.0, 6.0)
        m = f.maximum(g)
        assert m.domain() == IntervalSet.single(2.0, 4.0)
        assert m.evaluate(3.0) == 2.0

    def test_disjoint_domains_empty(self):
        f = PWL.constant(1.0, 0.0, 1.0)
        g = PWL.constant(2.0, 2.0, 3.0)
        assert f.maximum(g).is_empty

    def test_minimum(self):
        f = PWL.linear(0.0, 1.0, 0.0, 10.0)
        g = PWL.constant(5.0, 0.0, 10.0)
        m = f.minimum(g)
        assert m.evaluate(2.0) == 2.0
        assert m.evaluate(8.0) == 5.0

    def test_point_domain_overlap(self):
        f = PWL.constant(1.0, 0.0, 2.0)
        g = PWL.constant(3.0, 2.0, 4.0)
        m = f.maximum(g)
        assert m.domain() == IntervalSet.single(2.0, 2.0)
        assert m.evaluate(2.0) == 3.0

    def test_maximum_all(self):
        fs = [PWL.linear(float(10 - i), float(i), 0.0, 10.0) for i in range(4)]
        m = maximum_all(fs)
        for x in [0.0, 1.0, 2.5, 7.0, 10.0]:
            assert m.evaluate(x) == pytest.approx(
                max(f.evaluate(x) for f in fs)
            )

    def test_maximum_all_skips_empty(self):
        fs = [PWL([]), PWL.constant(1.0, 0.0, 1.0)]
        assert maximum_all(fs).approx_equal(PWL.constant(1.0, 0.0, 1.0))

    def test_maximum_all_empty_raises(self):
        with pytest.raises(ValueError):
            maximum_all([PWL([])])


class TestRegions:
    def test_region_leq_simple(self):
        f = PWL.linear(0.0, 1.0, 0.0, 10.0)  # x
        g = PWL.constant(5.0, 0.0, 10.0)  # 5
        r = f.region_leq(g)
        assert r.approx_equal(IntervalSet.single(0.0, 5.0))

    def test_region_leq_everywhere(self):
        f = PWL.constant(0.0, 0.0, 10.0)
        g = PWL.constant(5.0, 0.0, 10.0)
        assert f.region_leq(g) == IntervalSet.single(0.0, 10.0)

    def test_region_leq_nowhere(self):
        f = PWL.constant(9.0, 0.0, 10.0)
        g = PWL.constant(5.0, 0.0, 10.0)
        assert f.region_leq(g).is_empty

    def test_region_leq_restricted_to_common_domain(self):
        f = PWL.constant(0.0, 0.0, 3.0)
        g = PWL.constant(5.0, 2.0, 10.0)
        assert f.region_leq(g) == IntervalSet.single(2.0, 3.0)

    def test_region_lt_excludes_ties(self):
        f = PWL.constant(5.0, 0.0, 10.0)
        g = PWL.constant(5.0, 0.0, 10.0)
        assert f.region_lt(g).is_empty
        assert f.region_leq(g) == IntervalSet.single(0.0, 10.0)

    def test_region_lt_crossing(self):
        f = PWL.linear(0.0, 1.0, 0.0, 10.0)
        g = PWL.constant(5.0, 0.0, 10.0)
        r = f.region_lt(g)
        assert r.approx_equal(IntervalSet.single(0.0, 5.0), atol=1e-6)


class TestApproxEqual:
    def test_same_function_different_segmentation(self):
        f = PWL.linear(0.0, 1.0, 0.0, 10.0)
        g = PWL([Segment(0, 4, 0.0, 1.0), Segment(4, 10, 0.0, 1.0)])
        # canonicalization merges g into one segment, so exact equality holds
        assert f == g
        assert f.approx_equal(g)

    def test_different_functions(self):
        f = PWL.linear(0.0, 1.0, 0.0, 10.0)
        g = PWL.linear(0.1, 1.0, 0.0, 10.0)
        assert not f.approx_equal(g, atol=1e-3)


# -- property-based tests ----------------------------------------------------

coeff = st.floats(min_value=-50, max_value=50, allow_nan=False)


@st.composite
def pwls(draw, max_pieces=4, x_max=20.0):
    """Random continuous PWL on [0, x_max] built from breakpoints."""
    n = draw(st.integers(min_value=2, max_value=max_pieces + 1))
    xs = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.01, max_value=x_max - 0.01),
                min_size=n - 2,
                max_size=n - 2,
                unique=True,
            )
        )
    )
    xs = [0.0] + xs + [x_max]
    ys = [draw(coeff) for _ in xs]
    return PWL.from_breakpoints(xs, ys)


def _grid(f, g, k=41):
    lo = max(f.domain().lo, g.domain().lo)
    hi = min(f.domain().hi, g.domain().hi)
    return [lo + (hi - lo) * i / (k - 1) for i in range(k)]


@given(pwls(), pwls())
@settings(max_examples=150)
def test_maximum_matches_pointwise(f, g):
    m = f.maximum(g)
    for x in _grid(f, g):
        assert m.evaluate(x) == pytest.approx(
            max(f.evaluate(x), g.evaluate(x)), abs=1e-6
        )


@given(pwls(), pwls())
@settings(max_examples=150)
def test_minimum_matches_pointwise(f, g):
    m = f.minimum(g)
    for x in _grid(f, g):
        assert m.evaluate(x) == pytest.approx(
            min(f.evaluate(x), g.evaluate(x)), abs=1e-6
        )


@given(pwls(), coeff, coeff)
@settings(max_examples=100)
def test_add_linear_pointwise(f, a, b):
    h = f.add_linear(a, b)
    for x in [0.0, 5.0, 10.0, 20.0]:
        assert h.evaluate(x) == pytest.approx(f.evaluate(x) + a + b * x, abs=1e-6)


@given(pwls(), st.floats(min_value=0.0, max_value=15.0))
@settings(max_examples=100)
def test_shift_pointwise(f, c):
    g = f.shift(c)
    hi = f.domain().hi - c
    if hi < 0:
        assert g.is_empty
        return
    for i in range(11):
        x = hi * i / 10.0
        assert g.evaluate(x) == pytest.approx(f.evaluate(x + c), abs=1e-6)


@given(pwls(), pwls())
@settings(max_examples=150)
def test_region_leq_is_sound(f, g):
    r = f.region_leq(g)
    for x in _grid(f, g):
        inside = r.contains(x, atol=1e-7)
        holds = f.evaluate(x) <= g.evaluate(x) + 1e-6
        if inside:
            assert holds
    # completeness at clearly-interior points
    for iv in r:
        if iv.length > 1e-3:
            x = iv.midpoint
            assert f.evaluate(x) <= g.evaluate(x) + 1e-6


@given(pwls(), pwls(), pwls())
@settings(max_examples=75)
def test_maximum_associative_pointwise(f, g, h):
    a = f.maximum(g).maximum(h)
    b = f.maximum(g.maximum(h))
    for x in _grid(a, b):
        assert a.evaluate(x) == pytest.approx(b.evaluate(x), abs=1e-6)
