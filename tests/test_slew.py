"""Tests for the slew-aware evaluation model."""

import numpy as np
import pytest

from repro.rctree import ElmoreAnalyzer, EvalContext
from repro.rctree.slew import SlewAnalyzer, SlewModel
from repro.tech import Buffer, Repeater, Technology

from .conftest import random_topology, two_pin_net, y_net

TECH = Technology(0.1, 0.01, name="test")
REP = Repeater.from_buffer_pair(Buffer("b", 20.0, 50.0, 0.25), name="rep")


class TestModelValidation:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SlewModel(slew_gain=-1.0)
        with pytest.raises(ValueError):
            SlewModel(slew_to_delay=-0.1)

    def test_defaults(self):
        m = SlewModel()
        assert m.slew_gain == pytest.approx(np.log(9.0))


class TestCollapseToElmore:
    @pytest.mark.parametrize("seed", range(6))
    def test_zero_sensitivity_equals_elmore(self, seed):
        rng = np.random.default_rng(seed)
        t = random_topology(rng, n_terminals=5, p_insertion=0.6)
        assignment = {idx: REP for idx in t.insertion_indices()[:2]}
        el = ElmoreAnalyzer(t, TECH, context=EvalContext(assignment=assignment))
        sl = SlewAnalyzer(t, TECH, assignment, SlewModel(slew_to_delay=0.0))
        for u in t.terminal_indices():
            if not t.node(u).terminal.is_source:
                continue
            for v in t.terminal_indices():
                if v == u:
                    continue
                assert sl.path_delay(u, v) == pytest.approx(
                    el.path_delay(u, v), rel=1e-9
                )

    def test_zero_sensitivity_ard(self):
        t = y_net()
        el = ElmoreAnalyzer(t, TECH)
        sl = SlewAnalyzer(t, TECH, model=SlewModel(slew_to_delay=0.0))
        assert sl.ard()[0] == pytest.approx(el.ard_bruteforce())


class TestSlewEffects:
    def test_slew_only_adds_delay(self):
        t = two_pin_net(length=4000.0)
        a, z = t.terminal_by_name("a"), t.terminal_by_name("z")
        el = ElmoreAnalyzer(t, TECH)
        sl = SlewAnalyzer(t, TECH, model=SlewModel())
        assert sl.path_delay(a, z) > el.path_delay(a, z)

    def test_input_slew_penalty(self):
        t = two_pin_net(length=1000.0)
        a, z = t.terminal_by_name("a"), t.terminal_by_name("z")
        clean = SlewAnalyzer(t, TECH, model=SlewModel(input_slew=0.0))
        dirty = SlewAnalyzer(t, TECH, model=SlewModel(input_slew=100.0))
        assert dirty.path_delay(a, z) == pytest.approx(
            clean.path_delay(a, z) + 0.25 * 100.0
        )

    def test_repeater_regenerates_slew(self):
        """The transition arriving at the far sink is much cleaner when a
        repeater re-drives the second half of a long wire."""
        t = two_pin_net(length=8000.0)
        m = t.insertion_indices()[0]
        a, z = t.terminal_by_name("a"), t.terminal_by_name("z")
        bare = SlewAnalyzer(t, TECH)
        buffered = SlewAnalyzer(t, TECH, {m: REP})
        assert buffered.sink_slew(a, z) < bare.sink_slew(a, z)

    def test_repeaters_help_more_under_slew_model(self):
        """The slew-aware relative gain of a buffered solution exceeds the
        Elmore-only gain — repeaters regenerate edges."""
        t = two_pin_net(length=8000.0)
        m = t.insertion_indices()[0]
        a, z = t.terminal_by_name("a"), t.terminal_by_name("z")
        el_gain = ElmoreAnalyzer(t, TECH, context=EvalContext(assignment={m: REP})).path_delay(a, z) / (
            ElmoreAnalyzer(t, TECH).path_delay(a, z)
        )
        sl_gain = SlewAnalyzer(t, TECH, {m: REP}).path_delay(a, z) / (
            SlewAnalyzer(t, TECH).path_delay(a, z)
        )
        assert sl_gain < el_gain  # bigger relative improvement with slew

    def test_ard_reports_pair(self):
        t = y_net()
        value, src, snk = SlewAnalyzer(t, TECH).ard()
        assert value > 0
        assert src in t.terminal_indices()
        assert snk in t.terminal_indices()

    def test_endpoint_validation(self):
        t = y_net()
        sl = SlewAnalyzer(t, TECH)
        with pytest.raises(ValueError):
            sl.path_delay(t.root, t.root)
        with pytest.raises(ValueError):
            sl.path_delay(t.steiner_indices()[0], t.root)
