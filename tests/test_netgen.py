"""Tests for random net generation and the paper workloads."""

import pytest

from repro.core.msri import MSRIOptions
from repro.netgen import (
    NetSpec,
    PAPER_SPACING_UM,
    build_net,
    driver_sizing_options,
    fixed_1x_option,
    paper_driver_options,
    paper_instance,
    paper_net_spec,
    paper_repeater_library,
    paper_technology,
    random_net,
    random_points,
    repeater_insertion_options,
)
from repro.tech import DEFAULT_BUFFER, UM_PER_CM


class TestRandomPoints:
    def test_deterministic(self):
        assert random_points(42, 10) == random_points(42, 10)

    def test_different_seeds_differ(self):
        assert random_points(1, 10) != random_points(2, 10)

    def test_on_grid(self):
        for x, y in random_points(7, 50):
            assert 0.0 <= x <= UM_PER_CM
            assert 0.0 <= y <= UM_PER_CM

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            random_points(0, 1)


class TestBuildNet:
    def test_basic_shape(self):
        tree = random_net(0, 10)
        assert len(tree.terminal_indices()) == 10
        assert len(tree.insertion_indices()) > 0
        assert tree.node(tree.root).terminal is not None

    def test_no_spacing_means_no_insertion_points(self):
        tree = random_net(0, 10, spacing=None)
        assert tree.insertion_indices() == []

    def test_spec_applied(self):
        spec = NetSpec(capacitance=0.123, resistance=321.0, intrinsic_delay=9.0)
        tree = random_net(3, 5, spec)
        for t in tree.terminals():
            assert t.capacitance == 0.123
            assert t.resistance == 321.0
            assert t.intrinsic_delay == 9.0

    def test_names(self):
        tree = build_net([(0, 0), (5000, 5000)], names=["left", "right"])
        assert sorted(t.name for t in tree.terminals()) == ["left", "right"]

    def test_custom_root(self):
        pts = random_points(5, 6)
        t0 = build_net(pts, root=0)
        t3 = build_net(pts, root=3)
        assert t0.node(t0.root).terminal.name == "p0"
        assert t3.node(t3.root).terminal.name == "p3"


class TestPaperWorkloads:
    def test_technology_anchors(self):
        tech = paper_technology()
        assert tech.extras["prev_stage_resistance"] == 400.0
        assert tech.extras["next_stage_capacitance"] == 0.2

    def test_net_spec_is_bare_1x(self):
        spec = paper_net_spec()
        assert spec.capacitance == DEFAULT_BUFFER.input_capacitance
        assert spec.resistance == DEFAULT_BUFFER.output_resistance
        assert spec.arrival_time == 0.0
        assert spec.downstream_delay == 0.0

    def test_repeater_library_is_1x_pair(self):
        lib = paper_repeater_library()
        (rep,) = lib.repeaters
        assert rep.cost == 2.0
        assert rep.c_a == DEFAULT_BUFFER.input_capacitance

    def test_driver_options_grid(self):
        opts = paper_driver_options()
        assert len(opts) == 16  # 4 driver sizes x 4 receiver sizes
        costs = sorted({o.cost for o in opts})
        assert costs[0] == 2.0 and costs[-1] == 8.0

    def test_fixed_1x_option_penalties(self):
        opt = fixed_1x_option()
        assert opt.cost == 2.0
        # prev-stage: 400 ohm * 0.05 pF = 20 ps
        assert opt.arrival_penalty == pytest.approx(20.0)
        # receiver into next stage: 50 ps + 400 ohm * 0.2 pF = 130 ps
        assert opt.sink_delay_extra == pytest.approx(130.0)

    def test_paper_instance_matches_paper_setup(self):
        tree = paper_instance(0, 10)
        assert len(tree.terminal_indices()) == 10
        # insertion spacing bounded by 800 um
        for v in range(len(tree)):
            if tree.edge_length(v) > 0:
                assert tree.edge_length(v) < PAPER_SPACING_UM

    def test_option_builders(self):
        ri = repeater_insertion_options()
        assert ri.library is not None
        assert len(ri.driver_options) == 1
        ds = driver_sizing_options()
        assert ds.library is None
        assert len(ds.driver_options) == 16

    def test_option_overrides_forwarded(self):
        ri = repeater_insertion_options(use_divide_and_conquer=False)
        assert isinstance(ri, MSRIOptions)
        assert not ri.use_divide_and_conquer
