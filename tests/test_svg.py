"""Tests for SVG rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svg import render_svg, save_svg
from repro.core.msri import MSRIOptions, insert_repeaters
from repro.tech import Buffer, Repeater, RepeaterLibrary, Technology

from .conftest import two_pin_net, y_net

TECH = Technology(0.1, 0.01)
REP = Repeater.from_buffer_pair(Buffer("b", 20.0, 50.0, 0.25), name="rep<&>")


def parse(svg):
    return ET.fromstring(svg)


class TestRenderSvg:
    def test_well_formed_xml(self):
        root = parse(render_svg(y_net()))
        assert root.tag.endswith("svg")

    def test_terminal_labels_present(self):
        svg = render_svg(y_net())
        for name in ("a", "b", "c"):
            assert f">{name}</text>" in svg

    def test_wire_count(self):
        root = parse(render_svg(y_net()))
        ns = "{http://www.w3.org/2000/svg}"
        paths = root.findall(f"{ns}path")
        assert len(paths) == len(y_net()) - 1  # one per edge

    def test_repeater_marker_and_escaping(self):
        t = two_pin_net(length=4000.0)
        m = t.insertion_indices()[0]
        svg = render_svg(t, {m: REP})
        root = parse(svg)  # must stay well-formed despite <&> in the name
        ns = "{http://www.w3.org/2000/svg}"
        rects = [r for r in root.iter(f"{ns}rect")]
        assert len(rects) >= 2  # background + repeater
        assert "rep&lt;&amp;&gt;" in svg

    def test_title_escaped(self):
        svg = render_svg(y_net(), title="a <net> & more")
        parse(svg)
        assert "a &lt;net&gt; &amp; more" in svg

    def test_custom_dimensions(self):
        root = parse(render_svg(y_net(), width=200, height=100))
        assert root.get("width") == "200"
        assert root.get("height") == "100"

    def test_save_svg(self, tmp_path):
        path = save_svg(y_net(), str(tmp_path / "net.svg"))
        root = ET.parse(path).getroot()
        assert root.tag.endswith("svg")

    def test_optimized_solution_renders(self):
        t = two_pin_net(length=4000.0)
        res = insert_repeaters(t, TECH, MSRIOptions(library=RepeaterLibrary(
            [Repeater.from_buffer_pair(Buffer("b", 20.0, 50.0, 0.25), name="rep")]
        )))
        best = res.min_ard()
        reps = {k: v for k, v in best.assignment().items()
                if isinstance(v, Repeater)}
        svg = render_svg(t, reps, title=f"ARD {best.ard:.0f} ps")
        parse(svg)
