"""Tests for memoized/incremental/parallel MSRI (docs/ALGORITHMS.md §13).

The decisive check is differential: every cached, incrementally re-solved,
or parallel-solved result must be **bit-identical** to a cold
:func:`repro.core.msri.insert_repeaters` run — root (cost, ARD) suites,
chosen assignments, and per-node fronts — with the REPRO_CHECK contracts
active so the engine's own differential verification runs as well.
"""

import dataclasses

import numpy as np
import pytest

from repro.check import contracts
from repro.core.msri import MSRIOptions, _domain_bound, insert_repeaters
from repro.core.msri_cache import (
    MSRICache,
    front_key,
    options_fingerprint,
    pack_front,
    subtree_signatures,
    unpack_front,
)
from repro.core.msri_engine import IncrementalMSRI, insert_repeaters_cached
from repro.rctree import EvalContext
from repro.tech import Buffer, Repeater, RepeaterLibrary, Technology

from .conftest import random_topology, two_pin_net, y_net

TECH = Technology(unit_resistance=0.1, unit_capacitance=0.01, name="test")
REP = Repeater.from_buffer_pair(
    Buffer("b", intrinsic_delay=20.0, output_resistance=50.0, input_capacitance=0.25),
    name="rep",
)
BIG = Repeater.from_buffer_pair(Buffer("B", 20.0, 25.0, 0.5, cost=2.0), name="big")
LIB = RepeaterLibrary([REP])
MULTI_LIB = RepeaterLibrary([REP, BIG])
OPTS = MSRIOptions(library=LIB)


def root_suite(result):
    """The value-bearing content of a root suite: scalars + assignments."""
    return [(s.cost, s.ard, s.assignment()) for s in result.solutions]


def assert_identical(a, b):
    """Exact equality of two MSRI results in every value-bearing field."""
    assert root_suite(a) == root_suite(b)


class TestSubtreeSignatures:
    def test_names_do_not_enter(self):
        t = y_net()
        renamed = [
            n
            if n.terminal is None
            else dataclasses.replace(
                n, terminal=dataclasses.replace(n.terminal, name=f"x{n.index}")
            )
            for n in t.nodes
        ]
        t2 = type(t)(
            renamed,
            [t.parent(i) for i in range(len(t))],
            [t.edge_length(i) for i in range(len(t))],
        )
        assert subtree_signatures(t) == subtree_signatures(t2)

    def test_edge_length_changes_signature_on_root_path_only(self):
        t = random_topology(np.random.default_rng(0), n_terminals=5)
        child = [i for i in range(len(t)) if t.parent(i) is not None][-1]
        lengths = [t.edge_length(i) for i in range(len(t))]
        lengths[child] = lengths[child] + 1.0
        t2 = type(t)(t.nodes, [t.parent(i) for i in range(len(t))], lengths)
        s1, s2 = subtree_signatures(t), subtree_signatures(t2)
        path = set()
        v = t.parent(child)
        while v is not None:
            path.add(v)
            v = t.parent(v)
        for i in range(len(t)):
            if i in path:
                assert s1[i] != s2[i], f"root-path node {i} must change"
            else:
                # the edge above a node is the *parent's* content
                assert s1[i] == s2[i], f"off-path node {i} must not change"

    def test_terminal_params_enter(self):
        t = y_net()
        ti = [i for i in t.terminal_indices() if i != t.root][0]
        term = t.node(ti).terminal
        nodes = list(t.nodes)
        nodes[ti] = dataclasses.replace(
            nodes[ti],
            terminal=dataclasses.replace(term, capacitance=term.capacitance * 2),
        )
        t2 = type(t)(
            nodes,
            [t.parent(i) for i in range(len(t))],
            [t.edge_length(i) for i in range(len(t))],
        )
        assert subtree_signatures(t)[ti] != subtree_signatures(t2)[ti]

    def test_widths_enter_parent_signature(self):
        t = y_net()
        child = [i for i in range(len(t)) if t.parent(i) is not None][0]
        s1 = subtree_signatures(t)
        s2 = subtree_signatures(t, {child: 2.0})
        assert s1[t.parent(child)] != s2[t.parent(child)]
        assert s1[child] == s2[child]


class TestFingerprintAndKey:
    def test_options_knobs_enter(self):
        base = options_fingerprint(TECH, OPTS)
        assert base != options_fingerprint(TECH, MSRIOptions(library=MULTI_LIB))
        assert base != options_fingerprint(
            TECH, MSRIOptions(library=LIB, prefilter=False)
        )
        assert base != options_fingerprint(
            TECH, MSRIOptions(library=LIB, spec=100.0)
        )
        assert base != options_fingerprint(
            Technology(unit_resistance=0.2, unit_capacitance=0.01, name="t2"),
            OPTS,
        )

    def test_c_max_enters_key(self):
        sig = subtree_signatures(y_net())[1]
        fp = options_fingerprint(TECH, OPTS)
        assert front_key(sig, fp, 10.0) != front_key(sig, fp, 20.0)


class TestPackUnpack:
    def test_round_trip_values_and_assignments(self):
        t = two_pin_net(length=4000.0)
        c_max = _domain_bound(t, TECH, OPTS)
        # prime an engine to get real fronts
        eng = IncrementalMSRI(t, TECH, OPTS)
        eng.solve()
        (child,) = t.children(t.root)
        front = eng._fronts[child]
        rebuilt = unpack_front(t, child, pack_front(t, child, front))
        contracts.verify_front_values(rebuilt, front, context="round trip")
        # collect() order (duplicate-node dict winner) must survive
        for a, b in zip(front, rebuilt):
            assert [(p.node, p.what) for p in a.trace.collect()] == [
                (p.node, p.what) for p in b.trace.collect()
            ]

    def test_fresh_uids(self):
        t = two_pin_net(length=2000.0)
        eng = IncrementalMSRI(t, TECH, OPTS)
        eng.solve()
        (child,) = t.children(t.root)
        front = eng._fronts[child]
        rebuilt = unpack_front(t, child, pack_front(t, child, front))
        assert {s.uid for s in rebuilt}.isdisjoint({s.uid for s in front})


class TestMSRICacheLRU:
    def test_validation(self):
        with pytest.raises(ValueError):
            MSRICache(maxsize=0)

    def test_hit_miss_store_counters(self):
        cache = MSRICache(maxsize=4)
        assert cache.get(b"a") is None
        cache.put(b"a", ((1.0,),))
        assert cache.get(b"a") == ((1.0,),)
        assert cache.stats() == {
            "size": 1, "hits": 1, "misses": 1, "stores": 1, "evictions": 0,
        }

    def test_lru_eviction_order(self):
        cache = MSRICache(maxsize=2)
        cache.put(b"a", (1,))
        cache.put(b"b", (2,))
        cache.get(b"a")  # refresh a: b is now the LRU entry
        cache.put(b"c", (3,))
        assert cache.get(b"b") is None
        assert cache.get(b"a") == (1,)
        assert cache.get(b"c") == (3,)
        assert cache.evictions == 1

    def test_clear(self):
        cache = MSRICache()
        cache.put(b"a", (1,))
        cache.clear()
        assert len(cache) == 0 and cache.get(b"a") is None


class TestDifferentialSuite:
    """≥200 randomized nets: warm path bit-identical to cold, REPRO_CHECK on."""

    def test_200_net_cached_identity(self):
        cache = MSRICache(maxsize=16384)
        with contracts.checking():
            for seed in range(200):
                rng = np.random.default_rng(seed)
                t = random_topology(
                    rng,
                    n_terminals=int(rng.integers(3, 6)),
                    p_insertion=float(rng.uniform(0.3, 1.0)),
                )
                opts = (
                    MSRIOptions(library=LIB, quantize_bound=bool(seed % 2))
                    if seed % 3
                    else MSRIOptions(library=MULTI_LIB)
                )
                cold = insert_repeaters(t, TECH, opts)
                insert_repeaters_cached(t, TECH, opts, cache=cache)  # prime
                warm = insert_repeaters_cached(t, TECH, opts, cache=cache)
                assert_identical(warm, cold)
                assert warm.stats.cache_hits >= 1
                assert warm.stats.nodes_processed == 0
        assert cache.hits >= 200

    def test_front_values_per_node(self):
        """Cold vs cache-primed engines agree front-by-front, not just at root."""
        t = random_topology(np.random.default_rng(7), n_terminals=6)
        cache = MSRICache()
        with contracts.checking():
            a = IncrementalMSRI(t, TECH, OPTS, cache=cache)
            a.solve()
            b = IncrementalMSRI(t, TECH, OPTS, cache=cache)
            b.solve()
            for v in a._fronts:
                if v in b._fronts:
                    contracts.verify_front_values(
                        b._fronts[v], a._fronts[v], context=f"node {v}"
                    )


class TestIncrementalEdits:
    def test_set_terminal_recomputes_root_path_only(self):
        t = random_topology(np.random.default_rng(3), n_terminals=6)
        with contracts.checking():
            eng = IncrementalMSRI(t, TECH, OPTS)
            full = eng.solve().stats.nodes_processed
            ti = [i for i in t.terminal_indices() if i != t.root][0]
            term = t.node(ti).terminal
            eng.set_terminal(
                ti,
                dataclasses.replace(
                    term, downstream_delay=term.downstream_delay + 3.0
                ),
            )
            r = eng.solve()
            assert 0 < r.stats.nodes_processed < full
            assert_identical(r, insert_repeaters(eng.tree, TECH, OPTS))

    def test_capacitance_edit_flushes_without_quantize(self):
        t = random_topology(np.random.default_rng(4), n_terminals=5)
        eng = IncrementalMSRI(t, TECH, OPTS)
        full = eng.solve().stats.nodes_processed
        ti = [i for i in t.terminal_indices() if i != t.root][0]
        term = t.node(ti).terminal
        eng.set_terminal(
            ti, dataclasses.replace(term, capacitance=term.capacitance * 1.5)
        )
        # c_max moved: every retained front embeds the old bound
        assert eng.solve().stats.nodes_processed == full

    def test_capacitance_edit_retains_with_quantize(self):
        t = random_topology(np.random.default_rng(4), n_terminals=5)
        opts = MSRIOptions(library=LIB, quantize_bound=True)
        with contracts.checking():
            eng = IncrementalMSRI(t, TECH, opts)
            full = eng.solve().stats.nodes_processed
            ti = [i for i in t.terminal_indices() if i != t.root][0]
            term = t.node(ti).terminal
            eng.set_terminal(
                ti,
                dataclasses.replace(
                    term, capacitance=term.capacitance * 1.0001
                ),
            )
            r = eng.solve()
            assert r.stats.nodes_processed < full
            assert_identical(r, insert_repeaters(eng.tree, TECH, opts))

    def test_set_edge_length(self):
        t = random_topology(np.random.default_rng(5), n_terminals=6)
        with contracts.checking():
            eng = IncrementalMSRI(t, TECH, OPTS)
            eng.solve()
            ei = [i for i in range(len(t)) if t.parent(i) is not None][-1]
            eng.set_edge_length(ei, t.edge_length(ei) + 100.0)
            r = eng.solve()
            assert_identical(r, insert_repeaters(eng.tree, TECH, OPTS))

    def test_set_wire_width(self):
        t = random_topology(np.random.default_rng(6), n_terminals=5)
        with contracts.checking():
            eng = IncrementalMSRI(t, TECH, OPTS)
            eng.solve()
            ei = [i for i in range(len(t)) if t.parent(i) is not None][0]
            eng.set_wire_width(ei, 1.7)
            r = eng.solve()
            cold = insert_repeaters(
                eng.tree, TECH, OPTS, context=EvalContext(wire_widths={ei: 1.7})
            )
            assert_identical(r, cold)

    def test_edit_validation(self):
        t = y_net()
        eng = IncrementalMSRI(t, TECH, OPTS)
        steiner = t.steiner_indices()[0]
        term = t.node(t.root).terminal
        with pytest.raises(ValueError):
            eng.set_terminal(steiner, term)
        with pytest.raises(ValueError):
            eng.set_edge_length(t.root, 10.0)
        with pytest.raises(ValueError):
            eng.set_wire_width(t.root, 1.0)
        child = t.children(t.root)[0]
        with pytest.raises(ValueError):
            eng.set_wire_width(child, 0.0)
        with pytest.raises(ValueError):
            eng.set_edge_length(child, -1.0)
        with pytest.raises(ValueError):
            IncrementalMSRI(t, TECH, OPTS, workers=-1)

    def test_solve_tree_switches_nets(self):
        t1 = random_topology(np.random.default_rng(8), n_terminals=5)
        t2 = random_topology(np.random.default_rng(9), n_terminals=6)
        cache = MSRICache()
        with contracts.checking():
            eng = IncrementalMSRI(t1, TECH, OPTS, cache=cache)
            eng.solve()
            r2 = eng.solve_tree(t2)
            assert_identical(r2, insert_repeaters(t2, TECH, OPTS))
            # returning to an already-seen tree hits the cross-tree cache
            r1 = eng.solve_tree(t1)
            assert r1.stats.cache_hits >= 1
            assert_identical(r1, insert_repeaters(t1, TECH, OPTS))


class TestCacheSemantics:
    def test_lossy_bypasses_global_cache(self):
        t = random_topology(np.random.default_rng(10), n_terminals=6)
        opts = MSRIOptions(library=LIB, lossy=True, max_front_width=3)
        cache = MSRICache()
        a = insert_repeaters_cached(t, TECH, opts, cache=cache)
        b = insert_repeaters_cached(t, TECH, opts, cache=cache)
        assert cache.stats()["stores"] == 0 and cache.stats()["hits"] == 0
        # lossy runs are still deterministic, just uncached
        assert root_suite(a) == root_suite(b)

    def test_lossy_engine_still_retains_own_fronts(self):
        t = random_topology(np.random.default_rng(10), n_terminals=6)
        opts = MSRIOptions(library=LIB, lossy=True, max_front_width=3)
        eng = IncrementalMSRI(t, TECH, opts)
        eng.solve()
        assert eng.solve().stats.nodes_processed == 0  # dirty-path reuse

    def test_quantize_bound_is_power_of_two(self):
        t = y_net()
        plain = _domain_bound(t, TECH, OPTS)
        q = _domain_bound(t, TECH, MSRIOptions(library=LIB, quantize_bound=True))
        assert q >= plain
        m, e = np.frexp(q)
        assert m == 0.5  # exactly a power of two

    def test_quantized_cold_runs_self_consistent(self):
        t = random_topology(np.random.default_rng(11), n_terminals=5)
        opts = MSRIOptions(library=LIB, quantize_bound=True)
        assert root_suite(insert_repeaters(t, TECH, opts)) == root_suite(
            insert_repeaters(t, TECH, opts)
        )

    def test_stats_reuse_accounting(self):
        """Reused fronts never inflate generated/kept (conservation holds)."""
        t = random_topology(np.random.default_rng(12), n_terminals=6)
        cache = MSRICache()
        insert_repeaters_cached(t, TECH, OPTS, cache=cache)
        warm = insert_repeaters_cached(t, TECH, OPTS, cache=cache)
        assert warm.stats.solutions_generated == 0
        assert warm.stats.solutions_after_pruning == 0
        assert warm.stats.nodes_reused == len(t) - 1
        assert warm.stats.max_set_size >= 1  # reused widths still reported


class TestParallelSolving:
    def test_workers_bit_identical(self):
        rng = np.random.default_rng(13)
        t = random_topology(rng, n_terminals=14, p_insertion=1.0)
        cold = insert_repeaters(t, TECH, OPTS)
        par = IncrementalMSRI(t, TECH, OPTS, workers=2).solve()
        assert_identical(par, cold)
        # merged stats conserve the cold totals exactly
        assert par.stats.solutions_generated == cold.stats.solutions_generated
        assert par.stats.solutions_after_pruning == (
            cold.stats.solutions_after_pruning
        )
        assert par.stats.nodes_processed == cold.stats.nodes_processed

    def test_small_net_stays_serial(self):
        t = y_net()
        r = IncrementalMSRI(t, TECH, OPTS, workers=2).solve()
        assert_identical(r, insert_repeaters(t, TECH, OPTS))
