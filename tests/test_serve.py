"""Tests for ``repro.serve``: wire protocol, session server, load generator.

The server's core claim is that serving adds zero arithmetic: every
response must be byte-identical to what a direct serial engine call
produces.  These tests drive a real server over real sockets (loopback,
ephemeral ports) and check exactly that, plus the robustness contract:
malformed frames, oversized frames, mid-edit disconnects, TTL eviction
and graceful drain must never kill the daemon.
"""

import json
import socket
import time

import pytest

from repro.io.serialize import (
    SERVE_SCHEMA,
    WireProtocolError,
    ard_result_to_dict,
    decode_frame,
    encode_frame,
    eval_context_from_dict,
    eval_context_to_dict,
    repeater_to_dict,
    subtree_timing_from_dict,
    subtree_timing_to_dict,
    tree_to_dict,
)
from repro.core.ard import ard
from repro.core.msri import insert_repeaters
from repro.netgen.random_nets import chain_net, star_net
from repro.netgen.workloads import (
    paper_net_spec,
    paper_repeater_library,
    paper_technology,
    repeater_insertion_options,
)
from repro.rctree.engine import EvalContext
from repro.rctree.flat import evaluate_batch
from repro.rctree.registry import make_editable_engine
from repro.serve.loadgen import ServeClient, edit_stream, run_load
from repro.serve.server import ServeConfig, start_in_thread
from repro.serve.session import SessionManager, apply_edit

TECH = paper_technology()


@pytest.fixture(scope="module")
def server():
    srv, stop = start_in_thread(ServeConfig())
    yield srv
    stop()


@pytest.fixture()
def client(server):
    c = ServeClient("127.0.0.1", server.port)
    yield c
    c.close()


def _net(i=0):
    return star_net(3 + i, paper_net_spec())


# -- wire codecs ----------------------------------------------------------------


class TestWireCodecs:
    def test_frame_roundtrip_is_deterministic(self):
        frame = {"schema": SERVE_SCHEMA, "id": 7, "op": "hello", "z": 1, "a": 2}
        raw = encode_frame(frame)
        assert raw.endswith(b"\n")
        assert decode_frame(raw) == frame
        assert encode_frame(decode_frame(raw)) == raw

    def test_ard_result_roundtrips_bitwise(self):
        result = ard(_net(), TECH)
        d = ard_result_to_dict(result, include_timing=True)
        back = decode_frame(encode_frame({"schema": SERVE_SCHEMA, "ard": d}))
        from repro.io.serialize import ard_result_from_dict

        again = ard_result_from_dict(back["ard"])
        assert again.value == result.value
        assert (again.source, again.sink) == (result.source, result.sink)
        assert again.timing == result.timing

    def test_never_travels_as_token(self):
        from repro.rctree.engine import SubtreeTiming
        from repro.tech.terminals import NEVER

        st = SubtreeTiming(NEVER, None, 1.5, 3, NEVER, None)
        d = subtree_timing_to_dict(st)
        assert d["arrival"] == "never" and d["diameter"] == "never"
        assert subtree_timing_from_dict(d) == st

    @pytest.mark.parametrize(
        "raw, code",
        [
            (b"{truncated", "bad-frame"),
            (b"[1, 2, 3]\n", "bad-frame"),
            (b"42\n", "bad-frame"),
            (b"\xff\xfe\x00", "bad-frame"),
            (b"", "bad-frame"),
            (b'{"op": "hello"}\n', "bad-request"),  # missing schema
            (b'{"schema": 99, "op": "hello"}\n', "bad-request"),
        ],
    )
    def test_decode_rejections(self, raw, code):
        with pytest.raises(WireProtocolError) as exc:
            decode_frame(raw)
        assert exc.value.code == code

    def test_eval_context_roundtrip(self):
        rep = paper_repeater_library().repeaters[0]
        ctx = EvalContext(
            assignment={4: rep},
            wire_widths={2: 1.5},
            include_companion_cap=True,
        )
        back = eval_context_from_dict(eval_context_to_dict(ctx))
        assert back.wire_widths == {2: 1.5}
        assert back.include_companion_cap
        assert dict(back.assignment)[4].r_ab == rep.r_ab
        assert eval_context_from_dict({}) == EvalContext()


# -- session layer --------------------------------------------------------------


class TestSessionLayer:
    def test_apply_edit_matches_direct_calls(self):
        tree = chain_net(5, paper_net_spec())
        via_frames = make_editable_engine("incremental", tree, TECH)
        direct = make_editable_engine("incremental", tree, TECH)
        rep = paper_repeater_library().repeaters[0]
        ins = sorted(tree.insertion_indices())[0]

        apply_edit(
            via_frames,
            {"edit": "set_assignment", "node": ins, "repeater": repeater_to_dict(rep)},
        )
        direct.set_assignment(ins, rep)
        apply_edit(via_frames, {"edit": "set_wire_width", "edge": 1, "width": 2.0})
        direct.set_wire_width(1, 2.0)
        apply_edit(
            via_frames,
            {"edit": "set_wire_scale", "resistance_factor": 1.1},
        )
        direct.set_wire_scale(resistance_factor=1.1)
        assert via_frames.evaluate().value == direct.evaluate().value

    def test_apply_edit_rejects_unknown_and_malformed(self):
        engine = make_editable_engine("incremental", _net(), TECH)
        with pytest.raises(WireProtocolError, match="unknown edit op"):
            apply_edit(engine, {"edit": "explode"})
        with pytest.raises(WireProtocolError, match="malformed"):
            apply_edit(engine, {"edit": "set_wire_width"})  # no edge
        # engine-side rejection is NOT a protocol error
        with pytest.raises(ValueError, match="width factor"):
            apply_edit(
                engine, {"edit": "set_wire_width", "edge": 1, "width": -2.0}
            )

    def test_manager_open_get_close_evict(self):
        mgr = SessionManager(ttl_s=0.05)
        s = mgr.open(_net(), TECH)
        assert mgr.get(s.sid) is s and len(mgr) == 1
        with pytest.raises(WireProtocolError) as exc:
            mgr.get("s999")
        assert exc.value.code == "unknown-session"
        time.sleep(0.08)
        assert mgr.evict_idle() == [s.sid]
        assert len(mgr) == 0
        assert mgr.close(s.sid) is False


# -- the live server ------------------------------------------------------------


class TestServer:
    def test_hello_reports_editable_engines(self, client):
        resp = client.check("hello")
        assert "incremental" in resp["engines"]
        assert "reference" not in resp["engines"]
        assert resp["default_engine"] == "incremental"

    def test_session_stream_matches_direct_engine(self, client):
        tree = _net(2)
        resp = client.check("open", net=tree_to_dict(tree))
        sid = resp["session"]
        direct = make_editable_engine("incremental", tree, TECH)
        assert resp["n"] == len(tree)
        assert resp["ard"] == ard_result_to_dict(direct.evaluate())

        edits = edit_stream(11, tree, 15)
        for e in edits:
            got = client.check("edit", session=sid, **e)
            apply_edit(direct, e)
            assert got["ard"] == ard_result_to_dict(direct.evaluate())
        assert client.check("eval", session=sid)["ard"] == ard_result_to_dict(
            direct.evaluate()
        )
        terms = sorted(tree.terminal_indices())
        got = client.check(
            "path_delay", session=sid, src=terms[0], dst=terms[-1]
        )
        assert got["delay"] == direct.path_delay(terms[0], terms[-1])
        assert client.check("close", session=sid)["closed"] is True
        assert client.check("close", session=sid)["closed"] is False

    def test_include_timing_session_ships_timing_tables(self, client):
        tree = _net(1)
        resp = client.check(
            "open", net=tree_to_dict(tree), engine="flat", include_timing=True
        )
        expected = ard(tree, TECH)
        assert resp["ard"] == ard_result_to_dict(expected, include_timing=True)
        assert resp["ard"]["timing"]  # non-empty per-node table

    def test_incremental_engine_rejects_timing_request(self, client):
        resp = client.request(
            "open", net=tree_to_dict(_net()), engine="incremental",
            include_timing=True,
        )
        assert resp["ok"] is False
        assert resp["error"]["code"] == "bad-request"

    def test_unknown_engine_lists_editable_names(self, client):
        resp = client.request("open", net=tree_to_dict(_net()), engine="nope")
        assert resp["ok"] is False
        assert "incremental" in resp["error"]["message"]

    def test_malformed_frames_do_not_kill_the_connection(self, client):
        for raw in (
            b"this is not json\n",
            b"[1,2,3]\n",
            b'{"schema": 1}\n',  # no op
            b'{"schema": 77, "op": "hello"}\n',
        ):
            client.send_raw(raw)
            resp = client.read_response()
            assert resp["ok"] is False, raw
        # the connection still works
        assert client.check("hello")["server"] == "repro-msri"

    def test_unknown_op_and_unknown_session(self, client):
        assert client.request("frobnicate")["error"]["code"] == "unknown-op"
        resp = client.request("edit", session="s424242", edit="reroot", node=0)
        assert resp["error"]["code"] == "unknown-session"

    def test_engine_error_reports_and_preserves_session(self, client):
        tree = _net(3)
        sid = client.check("open", net=tree_to_dict(tree))["session"]
        direct = make_editable_engine("incremental", tree, TECH)
        resp = client.request(
            "edit", session=sid, edit="set_wire_width", edge=1, width=-1.0
        )
        assert resp["error"]["code"] == "engine-error"
        # the rejected edit left the engine state untouched
        got = client.check("eval", session=sid)
        assert got["ard"] == ard_result_to_dict(direct.evaluate())
        client.check("close", session=sid)

    def test_one_shot_evaluate_matches_direct_batch(self, client):
        trees = [_net(i) for i in range(3)] + [chain_net(6, paper_net_spec())]
        resp = client.check(
            "evaluate", nets=[tree_to_dict(t) for t in trees]
        )
        direct = evaluate_batch(trees, TECH)
        assert resp["ards"] == [ard_result_to_dict(r) for r in direct]
        # repeat: served from the compile cache, identical bytes
        again = client.check(
            "evaluate", nets=[tree_to_dict(t) for t in trees]
        )
        assert again["ards"] == resp["ards"]

    def test_evaluate_rejects_empty_net_list(self, client):
        resp = client.request("evaluate", nets=[])
        assert resp["error"]["code"] == "bad-request"

    def test_stats_reports_sessions_and_cache(self, client):
        sid = client.check("open", net=tree_to_dict(_net()))["session"]
        stats = client.check("stats")
        assert stats["sessions"] >= 1
        assert set(stats["cache"]) == {"hits", "misses", "size"}
        client.check("close", session=sid)


class TestOptimizeOp:
    def test_optimize_matches_direct_msri(self, client):
        tree = _net(4)
        sid = client.check("open", net=tree_to_dict(tree))["session"]
        resp = client.check("optimize", session=sid)
        direct = insert_repeaters(tree, TECH, repeater_insertion_options())
        assert resp["mode"] == "repeater"
        assert resp["tradeoff"] == [
            {"cost": c, "ard": a} for c, a in direct.tradeoff()
        ]
        assert resp["stats"]["nodes"] == direct.stats.nodes_processed
        assert resp["stats"]["generated"] == direct.stats.solutions_generated
        assert "chosen" not in resp  # no spec in play
        client.check("close", session=sid)

    def test_session_defaults_overrides_and_spec(self, client):
        tree = _net(4)
        sid = client.check(
            "open", net=tree_to_dict(tree), msri={"prefilter": False}
        )["session"]
        base = client.check("optimize", session=sid)
        # exact knobs, whatever the combination, leave the frontier alone
        tuned = client.check(
            "optimize",
            session=sid,
            msri={"prefilter": True, "max_front_width": 8},
        )
        assert tuned["tradeoff"] == base["tradeoff"]
        # top-level spec is shorthand for {"msri": {"spec": ...}}
        met = client.check("optimize", session=sid, spec=1e9)
        assert met["chosen"] == base["tradeoff"][0]  # cheapest meets 1e9 ps
        unmet = client.check("optimize", session=sid, spec=1e-6)
        assert unmet["chosen"] is None
        client.check("close", session=sid)

    def test_sizing_mode(self, client):
        tree = _net(5)
        sid = client.check("open", net=tree_to_dict(tree))["session"]
        resp = client.check("optimize", session=sid, mode="sizing")
        assert resp["mode"] == "sizing"
        assert resp["tradeoff"]
        client.check("close", session=sid)

    def test_bad_mode_and_bad_knob_are_bad_requests(self, client):
        sid = client.check("open", net=tree_to_dict(_net()))["session"]
        resp = client.request("optimize", session=sid, mode="anneal")
        assert resp["error"]["code"] == "bad-request"
        resp = client.request("optimize", session=sid, msri={"max_width": 8})
        assert resp["error"]["code"] == "bad-request"
        # the failed requests leave the session usable
        assert client.check("eval", session=sid)["session"] == sid
        client.check("close", session=sid)


class TestServerFaults:
    def test_oversized_frame_is_rejected(self):
        srv, stop = start_in_thread(ServeConfig(max_frame_bytes=4096))
        try:
            with ServeClient("127.0.0.1", srv.port) as c:
                c.send_raw(b'{"schema": 1, "junk": "' + b"x" * 8192 + b'"}\n')
                resp = c.read_response()
                assert resp["ok"] is False
                assert resp["error"]["code"] == "frame-too-large"
            # the server accepts fresh connections afterwards
            with ServeClient("127.0.0.1", srv.port) as c2:
                assert c2.check("hello")["server"] == "repro-msri"
        finally:
            stop()

    def test_mid_edit_disconnect_cleans_up_sessions(self, server):
        c = ServeClient("127.0.0.1", server.port)
        sid = c.check("open", net=tree_to_dict(_net()))["session"]
        # fire an edit and slam the socket without reading the response
        c.send_raw(
            encode_frame(
                {
                    "schema": SERVE_SCHEMA,
                    "id": 99,
                    "op": "edit",
                    "session": sid,
                    "edit": "set_wire_width",
                    "edge": 1,
                    "width": 2.0,
                }
            )
        )
        c.close()  # slams both the file wrapper and the socket: FIN mid-edit
        # the daemon survives and the orphaned session disappears
        with ServeClient("127.0.0.1", server.port) as c2:
            deadline = time.time() + 5.0
            code = None
            while time.time() < deadline:
                resp = c2.request("eval", session=sid)
                code = (resp.get("error") or {}).get("code")
                if code == "unknown-session":
                    break
                time.sleep(0.05)
            assert code == "unknown-session"

    def test_truncated_frame_then_disconnect(self, server):
        raw = socket.create_connection(("127.0.0.1", server.port))
        raw.sendall(b'{"schema": 1, "op": "hel')  # no newline, then gone
        raw.close()
        with ServeClient("127.0.0.1", server.port) as c:
            assert c.check("hello")["server"] == "repro-msri"

    def test_ttl_evicts_idle_sessions(self):
        srv, stop = start_in_thread(
            ServeConfig(session_ttl_s=0.1, eviction_interval_s=0.02)
        )
        try:
            with ServeClient("127.0.0.1", srv.port) as c:
                sid = c.check("open", net=tree_to_dict(_net()))["session"]
                time.sleep(0.4)
                resp = c.request("eval", session=sid)
                assert resp["error"]["code"] == "unknown-session"
        finally:
            stop()

    def test_drain_stops_accepting(self):
        srv, stop = start_in_thread(ServeConfig())
        port = srv.port
        with ServeClient("127.0.0.1", port) as c:
            assert c.check("hello")["ok"]
        stop()
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=0.5)


class TestConcurrentDifferential:
    def test_concurrent_sessions_are_byte_identical(self, server):
        report = run_load(
            "127.0.0.1",
            server.port,
            sessions=6,
            edits_per_session=12,
            seed=5,
        )
        assert report.errors == []
        assert report.mismatch_details == []
        assert report.mismatches == 0
        assert report.edits_total == 6 * 12

    def test_flat_engine_sessions_are_byte_identical(self, server):
        report = run_load(
            "127.0.0.1",
            server.port,
            sessions=4,
            edits_per_session=10,
            seed=9,
            engine="flat-python",
        )
        assert report.ok, (report.mismatch_details, report.errors)

    def test_edit_stream_is_deterministic(self):
        tree = _net(4)
        assert edit_stream(3, tree, 20) == edit_stream(3, tree, 20)
        assert edit_stream(3, tree, 20) != edit_stream(4, tree, 20)
