"""Tests for Steiner topology generation and insertion-point placement."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.netgen import random_points
from repro.rctree import NodeKind
from repro.steiner import (
    add_insertion_points,
    build_steiner_topology,
    l_route_point,
    rectilinear_mst,
    steinerize,
    total_length,
)

from .conftest import y_net


def nx_mst_length(points):
    g = nx.Graph()
    for i, a in enumerate(points):
        for j in range(i + 1, len(points)):
            b = points[j]
            g.add_edge(i, j, weight=abs(a[0] - b[0]) + abs(a[1] - b[1]))
    t = nx.minimum_spanning_tree(g)
    return sum(d["weight"] for _, _, d in t.edges(data=True))


class TestMST:
    def test_two_points(self):
        edges = rectilinear_mst([(0, 0), (3, 4)])
        assert edges == [(0, 1)]
        assert total_length([(0, 0), (3, 4)], edges) == 7.0

    def test_single_point(self):
        assert rectilinear_mst([(0, 0)]) == []

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rectilinear_mst([])

    def test_is_spanning_tree(self):
        pts = random_points(7, 15)
        edges = rectilinear_mst(pts)
        assert len(edges) == len(pts) - 1
        g = nx.Graph(edges)
        g.add_nodes_from(range(len(pts)))
        assert nx.is_connected(g)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx_weight(self, seed):
        pts = random_points(seed, 12)
        ours = total_length(pts, rectilinear_mst(pts))
        assert ours == pytest.approx(nx_mst_length(pts), rel=1e-9)

    def test_collinear_points(self):
        pts = [(float(i * 10), 0.0) for i in range(6)]
        assert total_length(pts, rectilinear_mst(pts)) == 50.0

    def test_duplicate_points(self):
        pts = [(0.0, 0.0), (0.0, 0.0), (5.0, 0.0)]
        edges = rectilinear_mst(pts)
        assert total_length(pts, edges) == 5.0


class TestSteinerize:
    def test_classic_three_point_gain(self):
        # three corners of an L: the median point saves wirelength
        pts = [(0.0, 0.0), (10.0, 10.0), (20.0, 0.0)]
        mst = rectilinear_mst(pts)
        topo = steinerize(pts, mst)
        # optimal RSMT routes through (10, 0): total 40 vs MST 40?
        # MST edges: (0-1) 20 + (1-2) 20 = 40; steiner tree: 10+10+10+10=40.
        # no gain expected here; check no regression instead
        assert topo.wirelength() <= total_length(pts, mst) + 1e-9

    def test_cross_configuration_improves(self):
        # four points in a plus; Steiner point at center wins
        pts = [(0.0, 5.0), (10.0, 5.0), (5.0, 0.0), (5.0, 10.0)]
        mst = rectilinear_mst(pts)
        topo = steinerize(pts, mst)
        assert topo.wirelength() < total_length(pts, mst) - 1e-9
        assert topo.wirelength() == pytest.approx(20.0)

    @pytest.mark.parametrize("seed", range(10))
    def test_never_worse_than_mst(self, seed):
        pts = random_points(seed, 12)
        mst = rectilinear_mst(pts)
        topo = steinerize(pts, mst)
        assert topo.wirelength() <= total_length(pts, mst) + 1e-6

    @pytest.mark.parametrize("seed", range(10))
    def test_remains_spanning_tree(self, seed):
        pts = random_points(100 + seed, 10)
        topo = build_steiner_topology(pts)
        g = nx.Graph(topo.edges)
        g.add_nodes_from(range(len(topo.points)))
        assert nx.is_connected(g)
        assert len(topo.edges) == len(topo.points) - 1
        assert topo.n_terminals == len(pts)

    def test_average_improvement_is_substantial(self):
        """Greedy steinerization should recover several percent on average."""
        gains = []
        for seed in range(20):
            pts = random_points(seed, 10)
            mst_len = total_length(pts, rectilinear_mst(pts))
            st_len = build_steiner_topology(pts).wirelength()
            gains.append(1.0 - st_len / mst_len)
        assert sum(gains) / len(gains) > 0.04  # > 4% average saving


class TestLRoutePoint:
    def test_endpoints(self):
        assert l_route_point(0, 0, 10, 20, 0.0) == (0, 0)
        assert l_route_point(0, 0, 10, 20, 1.0) == (10, 20)

    def test_horizontal_leg(self):
        assert l_route_point(0, 0, 10, 20, 10 / 30) == (10, 0)
        assert l_route_point(0, 0, 10, 20, 5 / 30) == (5, 0)

    def test_vertical_leg(self):
        assert l_route_point(0, 0, 10, 20, 20 / 30) == (10, 10)

    def test_degenerate(self):
        assert l_route_point(3, 4, 3, 4, 0.5) == (3, 4)

    def test_negative_direction(self):
        x, y = l_route_point(10, 10, 0, 0, 0.25)
        assert (x, y) == (5, 10)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            l_route_point(0, 0, 1, 1, 1.5)


class TestInsertionPoints:
    def test_spacing_respected(self):
        t = y_net()
        t2 = add_insertion_points(t, spacing=40.0)
        for v in range(len(t2)):
            if t2.parent(v) is not None and t2.edge_length(v) > 0:
                assert t2.edge_length(v) < 40.0

    def test_every_positive_wire_gets_one(self):
        t = y_net()
        t2 = add_insertion_points(t, spacing=10_000.0)
        # each original 100um edge is split exactly once
        assert len(t2.insertion_indices()) == 3

    def test_wirelength_preserved(self):
        t = y_net()
        t2 = add_insertion_points(t, spacing=33.0)
        assert t2.total_wire_length() == pytest.approx(t.total_wire_length())

    def test_terminals_preserved(self):
        t = y_net()
        t2 = add_insertion_points(t, spacing=50.0)
        assert sorted(x.name for x in t2.terminals()) == ["a", "b", "c"]
        assert t2.node(t2.root).terminal.name == "a"

    def test_zero_length_edges_skipped(self):
        from repro.rctree import TreeBuilder

        from .conftest import make_terminal

        b = TreeBuilder()
        a = b.add_terminal(make_terminal("a", 0, 0))
        m = b.add_terminal(make_terminal("m", 50, 0))
        z = b.add_terminal(make_terminal("z", 100, 0))
        b.connect(a, m)
        b.connect(m, z)
        t = b.build(root=a)  # leafification adds a zero-length pendant
        t2 = add_insertion_points(t, spacing=30.0)
        for v in t2.insertion_indices():
            assert t2.edge_length(v) > 0.0

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            add_insertion_points(y_net(), spacing=0.0)

    def test_paper_average_spacing(self):
        """Sec. VI footnote: with an 800um cap and >=1 point per wire, the
        realized average spacing falls well below the cap (paper: ~450um)."""
        from repro.netgen import paper_instance

        lengths = []
        for seed in range(5):
            t = paper_instance(seed, 10)
            lengths.extend(
                t.edge_length(v) for v in range(len(t)) if t.edge_length(v) > 0
            )
        avg = sum(lengths) / len(lengths)
        assert 200.0 < avg < 800.0
