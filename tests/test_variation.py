"""Tests for the process-variation Monte-Carlo analysis."""

import pytest

from repro.analysis.variation import VariationModel, VariationResult, monte_carlo_ard
from repro.tech import Buffer, Repeater, Technology

from .conftest import two_pin_net, y_net

TECH = Technology(0.1, 0.01, name="test")
REP = Repeater.from_buffer_pair(Buffer("b", 20.0, 50.0, 0.25), name="rep")


class TestModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            VariationModel(wire_resistance_spread=-0.1)

    def test_zero_spread_is_deterministic(self):
        zero = VariationModel(0.0, 0.0, 0.0, 0.0)
        res = monte_carlo_ard(y_net(), TECH, model=zero, samples=10)
        assert res.std == pytest.approx(0.0)
        assert res.mean == pytest.approx(res.nominal)


class TestSampling:
    def test_deterministic_seed(self):
        a = monte_carlo_ard(y_net(), TECH, samples=20, seed=7)
        b = monte_carlo_ard(y_net(), TECH, samples=20, seed=7)
        assert a.samples == b.samples

    def test_different_seed_differs(self):
        a = monte_carlo_ard(y_net(), TECH, samples=20, seed=7)
        b = monte_carlo_ard(y_net(), TECH, samples=20, seed=8)
        assert a.samples != b.samples

    def test_statistics_consistent(self):
        res = monte_carlo_ard(y_net(), TECH, samples=50)
        assert min(res.samples) <= res.mean <= max(res.samples)
        assert res.p95 <= res.worst
        assert res.worst == max(res.samples)
        assert 0.0 < res.relative_spread < 0.5

    def test_sample_count_validation(self):
        with pytest.raises(ValueError):
            monte_carlo_ard(y_net(), TECH, samples=0)

    def test_single_sample(self):
        res = monte_carlo_ard(y_net(), TECH, samples=1)
        assert res.std == 0.0


class TestSolutionsUnderVariation:
    def test_buffered_stays_better_across_corners(self):
        """The decisive robustness check: the buffered solution beats the
        unbuffered net not just nominally but in every sampled corner
        (same seed = same corners)."""
        t = two_pin_net(length=8000.0)
        m = t.insertion_indices()[0]
        unbuf = monte_carlo_ard(t, TECH, samples=60, seed=3)
        buf = monte_carlo_ard(t, TECH, {m: REP}, samples=60, seed=3)
        assert buf.nominal < unbuf.nominal
        assert all(b < u for b, u in zip(buf.samples, unbuf.samples))

    def test_assignment_parameters_are_perturbed(self):
        """With only device spread, a buffered net must still show spread
        (the repeater's own parameters vary)."""
        t = two_pin_net(length=8000.0)
        m = t.insertion_indices()[0]
        model = VariationModel(0.0, 0.0, 0.3, 0.0)
        res = monte_carlo_ard(t, TECH, {m: REP}, model=model, samples=30)
        assert res.std > 0.0
