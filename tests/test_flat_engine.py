"""FlatARDEngine behaviour: protocol, mutation ops, cache, registry, batch.

The differential suite (``test_flat_differential.py``) locks down numeric
identity; this module covers the engine *surface*: the TimingEngine
protocol, incremental mutation parity against :class:`IncrementalARD`,
the compile cache and canonical keys, the engine registry, and the
parallel batch front-end.  Deterministic net builders only, so the whole
module also runs on the without-numpy CI leg.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.batch import evaluate_batch_parallel
from repro.check import contracts
from repro.core.ard import ard
from repro.netgen.random_nets import chain_net, star_net
from repro.netgen.workloads import (
    paper_net_spec,
    paper_repeater_library,
    paper_technology,
)
from repro.rctree.engine import EvalContext
from repro.rctree.flat import (
    HAVE_NUMPY,
    FlatARDEngine,
    FlatNetCache,
    canonical_net_key,
    evaluate_batch,
)
from repro.rctree.incremental import IncrementalARD
from repro.rctree.registry import engine_names, make_engine, resolve_engine_factory

TECH = paper_technology()


def _net(kind: str = "chain", n: int = 6):
    if kind == "chain":
        return chain_net(n, paper_net_spec())
    return star_net(n, paper_net_spec())


def _rep(k: int = 0):
    return paper_repeater_library().oriented_options()[k]


class TestEngineProtocol:
    def test_engine_surface(self):
        tree = _net()
        engine = FlatARDEngine(tree, TECH)
        assert engine.tree is tree
        assert engine.technology is TECH
        assert engine.assignment == {}
        assert engine.backend in ("python", "numpy")
        result = engine.evaluate()
        assert engine.evaluate() is result  # cached until edited

    def test_evaluate_rejects_foreign_tree(self):
        engine = FlatARDEngine(_net(), TECH)
        with pytest.raises(ValueError):
            engine.evaluate(_net("star", 4))

    def test_context_roundtrip(self):
        tree = _net()
        idx = tree.insertion_indices()[0]
        ctx = EvalContext(assignment={idx: _rep()}, wire_widths={1: 2.0})
        engine = FlatARDEngine(tree, TECH, context=ctx)
        got = engine.context
        assert got.assignment == {idx: _rep()}
        assert got.wire_widths == {1: 2.0}
        assert got.include_companion_cap is False


class TestMutationParity:
    """Every mutation op stays bit-identical to IncrementalARD, op by op."""

    def test_assignment_edit_sequence(self):
        tree = _net("chain", 10)
        flat = FlatARDEngine(tree, TECH)
        inc = IncrementalARD(tree, TECH)
        points = tree.insertion_indices()
        script = [
            (points[0], _rep(0)),
            (points[3], _rep(1 % len(paper_repeater_library().oriented_options()))),
            (points[0], None),
            (points[5], _rep(0)),
        ]
        with contracts.checking():
            for idx, rep in script:
                flat.set_assignment(idx, rep)
                inc.set_assignment(idx, rep)
                assert flat.evaluate().value == inc.evaluate().value, (idx, rep)

    def test_terminal_and_width_edits(self):
        tree = _net("star", 5)
        flat = FlatARDEngine(tree, TECH)
        inc = IncrementalARD(tree, TECH)
        t_idx = tree.terminal_indices()[1]
        new_term = dataclasses.replace(
            tree.node(t_idx).terminal, arrival_time=42.0, capacitance=0.11
        )
        with contracts.checking():
            flat.set_terminal(t_idx, new_term)
            inc.set_terminal(t_idx, new_term)
            assert flat.evaluate().value == inc.evaluate().value
            edge = [i for i in range(len(tree)) if i != tree.root][1]
            flat.set_wire_width(edge, 2.5)
            inc.set_wire_width(edge, 2.5)
            assert flat.evaluate().value == inc.evaluate().value
            flat.set_wire_width(edge, None)
            inc.set_wire_width(edge, None)
            assert flat.evaluate().value == inc.evaluate().value

    def test_wire_scale_edits(self):
        tree = _net("chain", 8)
        flat = FlatARDEngine(tree, TECH)
        inc = IncrementalARD(tree, TECH)
        with contracts.checking():
            flat.set_wire_scale(resistance_factor=1.2, capacitance_factor=0.9)
            inc.set_wire_scale(resistance_factor=1.2, capacitance_factor=0.9)
            assert flat.evaluate().value == inc.evaluate().value

    def test_fresh_result_matches_cached(self):
        tree = _net("chain", 10)
        engine = FlatARDEngine(tree, TECH, include_timing=True)
        engine.set_assignment(tree.insertion_indices()[2], _rep())
        cached = engine.evaluate()
        fresh = engine.fresh_result()
        assert fresh.value == cached.value
        assert (fresh.source, fresh.sink) == (cached.source, cached.sink)


class TestCanonicalKey:
    def test_same_topology_same_key(self):
        assert canonical_net_key(_net(), TECH) == canonical_net_key(_net(), TECH)

    def test_names_do_not_matter(self):
        tree = _net("star", 4)
        renamed_nodes = []
        for node in tree.nodes:
            if node.terminal is None:
                renamed_nodes.append(node)
            else:
                term = dataclasses.replace(
                    node.terminal, name=f"x{node.index}"
                )
                renamed_nodes.append(dataclasses.replace(node, terminal=term))
        from repro.rctree.topology import RoutingTree

        renamed = RoutingTree(
            renamed_nodes,
            [tree.parent(i) for i in range(len(tree))],
            [tree.edge_length(i) for i in range(len(tree))],
        )
        assert canonical_net_key(renamed, TECH) == canonical_net_key(tree, TECH)

    def test_key_sensitive_to_knobs(self):
        tree = _net("chain", 6)
        base = canonical_net_key(tree, TECH)
        idx = tree.insertion_indices()[0]
        with_rep = canonical_net_key(
            tree, TECH, EvalContext(assignment={idx: _rep()})
        )
        with_width = canonical_net_key(
            tree, TECH, EvalContext(wire_widths={1: 2.0})
        )
        assert len({base, with_rep, with_width}) == 3

    def test_key_sensitive_to_geometry(self):
        a = chain_net(4, paper_net_spec(), segment_length=200.0)
        b = chain_net(4, paper_net_spec(), segment_length=201.0)
        assert canonical_net_key(a, TECH) != canonical_net_key(b, TECH)


class TestCompileCache:
    def test_hit_miss_accounting(self):
        cache = FlatNetCache(maxsize=8)
        tree = _net("chain", 5)
        first = cache.get_or_compile(tree, TECH)
        again = cache.get_or_compile(tree, TECH)
        assert again is first
        assert (cache.hits, cache.misses) == (1, 1)
        equivalent = _net("chain", 5)  # same key, different object
        assert cache.get_or_compile(equivalent, TECH) is first
        assert (cache.hits, cache.misses) == (2, 1)

    def test_lru_eviction(self):
        cache = FlatNetCache(maxsize=2)
        trees = [chain_net(n, paper_net_spec()) for n in (3, 4, 5)]
        for t in trees:
            cache.get_or_compile(t, TECH)
        # tree 0 was evicted by tree 2; recompiling it is a miss
        cache.get_or_compile(trees[0], TECH)
        assert cache.misses == 4
        # tree 2 is still resident
        cache.get_or_compile(trees[2], TECH)
        assert cache.hits == 1


class TestRegistry:
    def test_engine_names_is_sorted_and_complete(self):
        names = engine_names()
        assert names == tuple(sorted(names))
        for expected in ("reference", "elmore", "incremental", "flat",
                         "flat-python", "flat-numpy"):
            assert expected in names

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            make_engine("nope", _net(), TECH)
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine_factory("nope", TECH)

    def test_all_engines_agree_on_value(self):
        tree = _net("chain", 8)
        ref = ard(tree, TECH).value
        names = ["reference", "elmore", "incremental", "flat", "flat-python"]
        if HAVE_NUMPY:
            names.append("flat-numpy")
        for name in names:
            engine = make_engine(name, tree, TECH)
            assert engine.evaluate(tree).value == ref, name

    def test_factory_builds_per_tree_engines(self):
        factory = resolve_engine_factory("flat-python", TECH)
        for tree in (_net("chain", 4), _net("star", 3)):
            assert factory(tree).evaluate(tree).value == ard(tree, TECH).value

    def test_editable_engine_protocol(self):
        from repro.rctree.engine import EditableEngine
        from repro.rctree.registry import editable_engine_names

        tree = _net("chain", 4)
        names = editable_engine_names()
        assert "incremental" in names and "flat" in names
        assert "reference" not in names and "elmore" not in names
        for name in names:
            if name == "flat-numpy" and not HAVE_NUMPY:
                continue
            engine = make_engine(name, tree, TECH)
            assert isinstance(engine, EditableEngine), name
        assert not isinstance(make_engine("reference", tree, TECH),
                              EditableEngine)

    def test_make_editable_engine_rejects_non_editable(self):
        from repro.rctree.registry import make_editable_engine

        tree = _net("chain", 4)
        engine = make_editable_engine("incremental", tree, TECH)
        assert engine.evaluate().value == ard(tree, TECH).value
        with pytest.raises(ValueError, match="not editable"):
            make_editable_engine("reference", tree, TECH)
        with pytest.raises(ValueError, match="unknown engine"):
            make_editable_engine("nope", tree, TECH)

    def test_flat_reroot_matches_incremental(self):
        tree = _net("chain", 7)
        terms = list(tree.terminal_indices())
        inc = make_engine("incremental", tree, TECH)
        fl = make_engine("flat-python", tree, TECH)
        edges = [i for i in range(len(tree)) if tree.parent(i) is not None]
        for eng in (inc, fl):
            eng.set_wire_width(edges[1], 2.0)
            eng.set_wire_scale(resistance_factor=1.2, capacitance_factor=0.8)
            eng.reroot(terms[-1])
        assert fl.evaluate().value == inc.evaluate().value
        # edits keep agreeing after the structural change
        edges2 = [i for i in range(len(inc.tree))
                  if inc.tree.parent(i) is not None]
        for eng in (inc, fl):
            eng.set_wire_width(edges2[0], 3.0)
            eng.reroot(terms[0])
        assert fl.evaluate().value == inc.evaluate().value

    def test_greedy_accepts_engine_name(self):
        from repro.baselines.greedy import greedy_insertion

        tree = _net("chain", 6)
        lib = paper_repeater_library()
        by_name = greedy_insertion(tree, TECH, lib, engine="flat-python")
        by_default = greedy_insertion(tree, TECH, lib)
        assert [(s.cost, s.ard) for s in by_name] == [
            (s.cost, s.ard) for s in by_default
        ]


class TestBatch:
    def _corpus(self):
        return [chain_net(n, paper_net_spec()) for n in (2, 5, 9)] + [
            star_net(n, paper_net_spec()) for n in (2, 6)
        ]

    def test_batch_contexts_validation(self):
        nets = self._corpus()
        with pytest.raises(ValueError, match="contexts length"):
            evaluate_batch(nets, TECH, contexts=[None] * (len(nets) - 1))
        with pytest.raises(ValueError, match="contexts length"):
            evaluate_batch_parallel(nets, TECH, contexts=[None] * 2)

    def test_single_context_broadcasts(self):
        nets = self._corpus()
        idx_ok = [t.insertion_indices() for t in nets]
        ctx = EvalContext(include_companion_cap=True)
        assert idx_ok  # corpus sanity
        batch = evaluate_batch(nets, TECH, contexts=ctx, backend="python")
        for tree, res in zip(nets, batch):
            assert res.value == ard(tree, TECH, context=ctx).value

    def test_parallel_matches_serial(self):
        nets = self._corpus() * 4
        serial = evaluate_batch_parallel(nets, TECH)
        sharded = evaluate_batch_parallel(nets, TECH, workers=2, shard_size=3)
        assert [r.value for r in sharded] == [r.value for r in serial]
        assert [(r.source, r.sink) for r in sharded] == [
            (r.source, r.sink) for r in serial
        ]

    def test_parallel_shard_size_validation(self):
        with pytest.raises(ValueError, match="shard_size"):
            evaluate_batch_parallel(self._corpus(), TECH, shard_size=0)

    def test_batch_uses_supplied_cache(self):
        nets = self._corpus()
        cache = FlatNetCache()
        evaluate_batch(nets, TECH, cache=cache)
        evaluate_batch(nets, TECH, cache=cache)
        assert cache.misses == len(nets)
        assert cache.hits == len(nets)


@pytest.mark.skipif(not HAVE_NUMPY, reason="monte_carlo_ard requires numpy")
class TestVariationIntegration:
    def test_monte_carlo_flat_matches_incremental(self):
        from repro.analysis.variation import monte_carlo_ard

        tree = _net("chain", 8)
        rep = {tree.insertion_indices()[1]: _rep()}
        a = monte_carlo_ard(tree, TECH, rep, samples=8, seed=3)
        b = monte_carlo_ard(tree, TECH, rep, samples=8, seed=3, engine="flat")
        assert a.samples == b.samples
        assert a.nominal == b.nominal
