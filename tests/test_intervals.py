"""Unit and property tests for the closed-interval algebra."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval, IntervalSet, union_all


class TestInterval:
    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Interval(float("nan"), 1.0)

    def test_point_interval_allowed(self):
        iv = Interval(3.0, 3.0)
        assert iv.length == 0.0
        assert iv.contains(3.0)

    def test_length_and_midpoint(self):
        iv = Interval(1.0, 5.0)
        assert iv.length == 4.0
        assert iv.midpoint == 3.0

    def test_midpoint_infinite_ends(self):
        assert Interval(0.0, math.inf).midpoint == 1.0
        assert Interval(-math.inf, 0.0).midpoint == -1.0
        assert Interval(-math.inf, math.inf).midpoint == 0.0

    def test_contains_with_tolerance(self):
        iv = Interval(0.0, 1.0)
        assert not iv.contains(1.0000001)
        assert iv.contains(1.0000001, atol=1e-6)

    def test_overlaps(self):
        assert Interval(0, 2).overlaps(Interval(1, 3))
        assert Interval(0, 1).overlaps(Interval(1, 2))  # touching counts
        assert not Interval(0, 1).overlaps(Interval(2, 3))

    def test_intersect(self):
        assert Interval(0, 2).intersect(Interval(1, 3)) == Interval(1, 2)
        assert Interval(0, 1).intersect(Interval(2, 3)) is None
        assert Interval(0, 1).intersect(Interval(1, 2)) == Interval(1, 1)

    def test_shift(self):
        assert Interval(0, 1).shift(2.5) == Interval(2.5, 3.5)


class TestIntervalSetConstruction:
    def test_empty(self):
        s = IntervalSet.empty()
        assert s.is_empty
        assert not s
        assert len(s) == 0
        assert s.measure == 0.0

    def test_single(self):
        s = IntervalSet.single(0.0, 2.0)
        assert s.measure == 2.0
        assert s.lo == 0.0 and s.hi == 2.0

    def test_coalesces_overlaps(self):
        s = IntervalSet.from_pairs([(0, 2), (1, 3), (5, 6)])
        assert s.intervals == (Interval(0, 3), Interval(5, 6))

    def test_coalesces_touching(self):
        s = IntervalSet.from_pairs([(0, 1), (1, 2)])
        assert s.intervals == (Interval(0, 2),)

    def test_canonical_equality(self):
        a = IntervalSet.from_pairs([(0, 1), (1, 2), (4, 5)])
        b = IntervalSet.from_pairs([(4, 5), (0, 2)])
        assert a == b
        assert hash(a) == hash(b)

    def test_empty_set_has_no_bounds(self):
        with pytest.raises(ValueError):
            _ = IntervalSet.empty().lo
        with pytest.raises(ValueError):
            _ = IntervalSet.empty().hi


class TestIntervalSetAlgebra:
    def test_union(self):
        a = IntervalSet.single(0, 1)
        b = IntervalSet.single(2, 3)
        assert a.union(b).intervals == (Interval(0, 1), Interval(2, 3))

    def test_union_merges(self):
        a = IntervalSet.single(0, 2)
        b = IntervalSet.single(1, 3)
        assert a.union(b) == IntervalSet.single(0, 3)

    def test_intersect_basic(self):
        a = IntervalSet.from_pairs([(0, 2), (4, 6)])
        b = IntervalSet.from_pairs([(1, 5)])
        assert a.intersect(b) == IntervalSet.from_pairs([(1, 2), (4, 5)])

    def test_intersect_disjoint(self):
        a = IntervalSet.single(0, 1)
        b = IntervalSet.single(2, 3)
        assert a.intersect(b).is_empty

    def test_intersect_with_empty(self):
        a = IntervalSet.single(0, 1)
        assert a.intersect(IntervalSet.empty()).is_empty

    def test_difference_middle_cut(self):
        a = IntervalSet.single(0, 10)
        b = IntervalSet.single(3, 7)
        d = a.difference(b)
        assert d == IntervalSet.from_pairs([(0, 3), (7, 10)])

    def test_difference_full_cover(self):
        a = IntervalSet.single(2, 3)
        b = IntervalSet.single(0, 5)
        assert a.difference(b).is_empty

    def test_difference_multiple_cuts(self):
        a = IntervalSet.single(0, 10)
        b = IntervalSet.from_pairs([(1, 2), (4, 5), (8, 12)])
        d = a.difference(b)
        assert d == IntervalSet.from_pairs([(0, 1), (2, 4), (5, 8)])

    def test_difference_with_empty(self):
        a = IntervalSet.single(0, 1)
        assert a.difference(IntervalSet.empty()) == a
        assert IntervalSet.empty().difference(a).is_empty

    def test_shift(self):
        a = IntervalSet.from_pairs([(0, 1), (3, 4)])
        assert a.shift(1.0) == IntervalSet.from_pairs([(1, 2), (4, 5)])

    def test_clamp(self):
        a = IntervalSet.from_pairs([(0, 2), (5, 9)])
        assert a.clamp(1, 6) == IntervalSet.from_pairs([(1, 2), (5, 6)])
        assert a.clamp(10, 3).is_empty

    def test_contains(self):
        a = IntervalSet.from_pairs([(0, 1), (2, 3)])
        assert a.contains(0.5)
        assert a.contains(2.0)
        assert not a.contains(1.5)

    def test_sample_points_cover_each_interval(self):
        a = IntervalSet.from_pairs([(0, 1), (2, 2), (3, 5)])
        pts = a.sample_points(per_interval=3)
        assert all(a.contains(p) for p in pts)
        for iv in a:
            assert any(iv.contains(p) for p in pts)

    def test_union_all(self):
        sets = [IntervalSet.single(i, i + 1.5) for i in range(3)]
        assert union_all(sets) == IntervalSet.single(0, 3.5)

    def test_approx_equal(self):
        a = IntervalSet.single(0.0, 1.0)
        b = IntervalSet.single(1e-12, 1.0 - 1e-12)
        assert a.approx_equal(b)
        assert not a.approx_equal(IntervalSet.single(0.0, 2.0))


# -- property-based tests ----------------------------------------------------

finite = st.floats(min_value=-100, max_value=100, allow_nan=False)


@st.composite
def interval_sets(draw, max_intervals=5):
    n = draw(st.integers(min_value=0, max_value=max_intervals))
    pairs = []
    for _ in range(n):
        a = draw(finite)
        b = draw(finite)
        pairs.append((min(a, b), max(a, b)))
    return IntervalSet.from_pairs(pairs)


@given(interval_sets(), interval_sets())
@settings(max_examples=200)
def test_union_is_superset(a, b):
    for s in (a, b):
        for iv in s:
            assert a.union(b).contains(iv.midpoint, atol=1e-9)


@given(interval_sets(), interval_sets())
@settings(max_examples=200)
def test_intersection_subset_of_both(a, b):
    inter = a.intersect(b)
    for iv in inter:
        m = iv.midpoint
        assert a.contains(m, atol=1e-9)
        assert b.contains(m, atol=1e-9)


@given(interval_sets(), interval_sets())
@settings(max_examples=200)
def test_difference_disjoint_from_subtrahend_interiors(a, b):
    d = a.difference(b)
    for iv in d:
        if iv.length > 1e-6:
            m = iv.midpoint
            assert a.contains(m, atol=1e-9)
            # interior points of the difference are not interior to b
            interior = any(c.lo + 1e-9 < m < c.hi - 1e-9 for c in b)
            assert not interior


@given(interval_sets(), interval_sets())
@settings(max_examples=200)
def test_demorgan_measure(a, b):
    # |A| = |A \ B| + |A n B|
    assert a.measure == pytest.approx(
        a.difference(b).measure + a.intersect(b).measure, abs=1e-6
    )


@given(interval_sets())
@settings(max_examples=100)
def test_difference_self_is_empty(a):
    assert a.difference(a).is_empty


@given(interval_sets(), finite)
@settings(max_examples=100)
def test_shift_preserves_measure(a, delta):
    assert a.shift(delta).measure == pytest.approx(a.measure, rel=1e-9, abs=1e-9)
