"""Tests for the Elmore engine: capacitance passes, path delays, repeaters.

The hand-computed expectations use the round-number test technology
(r = 0.1 ohm/um, c = 0.01 pF/um) so every value below is exact.
"""

import numpy as np
import pytest

from repro.rctree import ElmoreAnalyzer, EvalContext, TreeBuilder
from repro.tech import Buffer, Repeater

from .conftest import make_terminal, random_topology, two_pin_net, y_net


@pytest.fixture
def rep():
    return Repeater.from_buffer_pair(
        Buffer("b", intrinsic_delay=20.0, output_resistance=50.0,
               input_capacitance=0.25),
        name="rep",
    )


class TestCapacitancePasses:
    def test_y_net_downstream(self, tech):
        t = y_net()
        an = ElmoreAnalyzer(t, tech)
        s = t.steiner_indices()[0]
        # each child branch: 1 pF wire + 0.5 pF pin
        assert an.downstream_cap(t.terminal_by_name("b")) == 0.5
        assert an.downstream_cap(s) == pytest.approx(3.0)

    def test_y_net_upstream(self, tech):
        t = y_net()
        an = ElmoreAnalyzer(t, tech)
        s = t.steiner_indices()[0]
        b = t.terminal_by_name("b")
        # above s: root terminal pin only (wire excluded by definition)
        assert an.upstream_cap(s) == 0.5
        # above b: root path (1 wire + 0.5 pin) + sibling branch (1 + 0.5)
        assert an.upstream_cap(b) == pytest.approx(3.0)

    def test_upstream_of_root_raises(self, tech):
        t = y_net()
        an = ElmoreAnalyzer(t, tech)
        with pytest.raises(ValueError):
            an.upstream_cap(t.root)

    def test_total_capacitance(self, tech):
        t = y_net()
        an = ElmoreAnalyzer(t, tech)
        assert an.total_capacitance() == pytest.approx(3.0 + 1.5)

    def test_driver_load_is_total(self, tech):
        # with no repeaters every driver sees the whole net
        t = y_net()
        an = ElmoreAnalyzer(t, tech)
        for idx in t.terminal_indices():
            assert an.driver_load(idx) == pytest.approx(an.total_capacitance())

    def test_edge_view_partition_invariant(self, tech):
        """For every edge, both directed views plus the wire = total cap."""
        rng = np.random.default_rng(7)
        for _ in range(10):
            t = random_topology(rng, n_terminals=6)
            an = ElmoreAnalyzer(t, tech)
            total = an.total_capacitance()
            for v in range(len(t)):
                p = t.parent(v)
                if p is None:
                    continue
                wire = tech.wire_capacitance(t.edge_length(v))
                both = an.node_view(v, p) + an.node_view(p, v) + wire
                assert both == pytest.approx(total, rel=1e-9)

    def test_repeater_decouples_views(self, tech, rep):
        t = two_pin_net()
        m = t.insertion_indices()[0]
        an = ElmoreAnalyzer(t, tech, context=EvalContext(assignment={m: rep}))
        a, z = t.terminal_by_name("a"), t.terminal_by_name("z")
        assert an.node_view(m, a) == rep.c_a  # looking down into the repeater
        assert an.node_view(m, z) == rep.c_b  # looking up into the repeater
        # the driver at a now sees only its half of the net
        assert an.driver_load(a) == pytest.approx(0.5 + 5.0 + 0.25)
        assert an.driver_load(z) == pytest.approx(0.5 + 5.0 + 0.25)

    def test_assignment_on_non_insertion_rejected(self, tech, rep):
        t = y_net()
        s = t.steiner_indices()[0]
        with pytest.raises(ValueError, match="insertion"):
            ElmoreAnalyzer(t, tech, context=EvalContext(assignment={s: rep}))

    def test_assignment_wrong_type_rejected(self, tech):
        t = two_pin_net()
        m = t.insertion_indices()[0]
        with pytest.raises(TypeError):
            ElmoreAnalyzer(t, tech, context=EvalContext(assignment={m: "not a repeater"}))


class TestPathDelay:
    def test_y_net_hand_computation(self, tech):
        t = y_net()
        an = ElmoreAnalyzer(t, tech)
        a = t.terminal_by_name("a")
        b = t.terminal_by_name("b")
        # driver 100 * 4.5 + wire a->s 10*(0.5+3.0) + wire s->b 10*(0.5+0.5)
        assert an.path_delay(a, b) == pytest.approx(450.0 + 35.0 + 10.0)

    def test_y_net_sibling_path(self, tech):
        t = y_net()
        an = ElmoreAnalyzer(t, tech)
        b = t.terminal_by_name("b")
        c = t.terminal_by_name("c")
        assert an.path_delay(b, c) == pytest.approx(495.0)

    def test_two_pin_unbuffered(self, tech):
        t = two_pin_net()
        an = ElmoreAnalyzer(t, tech)
        a, z = t.terminal_by_name("a"), t.terminal_by_name("z")
        assert an.path_delay(a, z) == pytest.approx(1100.0 + 400.0 + 150.0)
        assert an.path_delay(z, a) == pytest.approx(1650.0)

    def test_two_pin_with_repeater(self, tech, rep):
        t = two_pin_net()
        m = t.insertion_indices()[0]
        an = ElmoreAnalyzer(t, tech, context=EvalContext(assignment={m: rep}))
        a, z = t.terminal_by_name("a"), t.terminal_by_name("z")
        # 575 driver + 137.5 first wire + 295 repeater + 150 second wire
        assert an.path_delay(a, z) == pytest.approx(1157.5)
        assert an.path_delay(z, a) == pytest.approx(1157.5)

    def test_repeater_helps_long_wire(self, tech, rep):
        t = two_pin_net(length=4000.0)
        m = t.insertion_indices()[0]
        a, z = t.terminal_by_name("a"), t.terminal_by_name("z")
        unbuf = ElmoreAnalyzer(t, tech).path_delay(a, z)
        buf = ElmoreAnalyzer(t, tech, context=EvalContext(assignment={m: rep})).path_delay(a, z)
        assert buf < unbuf

    def test_companion_cap_increases_delay(self, tech, rep):
        t = two_pin_net()
        m = t.insertion_indices()[0]
        a, z = t.terminal_by_name("a"), t.terminal_by_name("z")
        base = ElmoreAnalyzer(t, tech, context=EvalContext(assignment={m: rep})).path_delay(a, z)
        comp = ElmoreAnalyzer(t, tech, context=EvalContext(assignment={m: rep}, include_companion_cap=True)).path_delay(a, z)
        assert comp == pytest.approx(base + rep.r_ab * rep.c_b)

    def test_self_path_rejected(self, tech):
        t = y_net()
        an = ElmoreAnalyzer(t, tech)
        a = t.terminal_by_name("a")
        with pytest.raises(ValueError):
            an.path_delay(a, a)

    def test_non_terminal_endpoint_rejected(self, tech):
        t = y_net()
        an = ElmoreAnalyzer(t, tech)
        with pytest.raises(ValueError):
            an.path_delay(t.steiner_indices()[0], t.terminal_by_name("b"))

    def test_non_source_cannot_drive(self, tech):
        b = TreeBuilder()
        src = b.add_terminal(make_terminal("src", 0, 0))
        snk = b.add_terminal(make_terminal("snk", 100, 0).as_sink_only())
        b.connect(src, snk)
        t = b.build(root=src)
        an = ElmoreAnalyzer(t, tech)
        with pytest.raises(ValueError, match="cannot drive"):
            an.path_delay(t.terminal_by_name("snk"), t.terminal_by_name("src"))


class TestAugmentedDelayAndARD:
    def test_augmented_adds_alpha_beta(self, tech):
        b = TreeBuilder()
        src = b.add_terminal(make_terminal("s", 0, 0, alpha=100.0))
        snk = b.add_terminal(make_terminal("k", 100, 0, beta=70.0))
        b.connect(src, snk)
        t = b.build(root=src)
        an = ElmoreAnalyzer(t, tech)
        u, v = t.terminal_by_name("s"), t.terminal_by_name("k")
        assert an.augmented_delay(u, v) == pytest.approx(
            100.0 + an.path_delay(u, v) + 70.0
        )

    def test_bruteforce_ard_y_net(self, tech):
        t = y_net()
        an = ElmoreAnalyzer(t, tech)
        assert an.ard_bruteforce() == pytest.approx(495.0)

    def test_critical_pair_consistent(self, tech):
        rng = np.random.default_rng(3)
        t = random_topology(rng, n_terminals=6)
        an = ElmoreAnalyzer(t, tech)
        u, v, d = an.critical_pair()
        assert d == pytest.approx(an.ard_bruteforce())
        assert d == pytest.approx(an.augmented_delay(u, v))

    def test_respects_roles(self, tech):
        # a pure source can never appear as the sink of the critical pair
        b = TreeBuilder()
        s = b.add_terminal(make_terminal("s", 0, 0).as_source_only())
        k = b.add_terminal(make_terminal("k", 500, 0).as_sink_only())
        b.connect(s, k)
        t = b.build(root=s)
        an = ElmoreAnalyzer(t, tech)
        u, v, _ = an.critical_pair()
        assert t.node(u).terminal.name == "s"
        assert t.node(v).terminal.name == "k"

    def test_ard_invariant_under_reroot(self, tech):
        rng = np.random.default_rng(11)
        for _ in range(5):
            t = random_topology(rng, n_terminals=6, p_insertion=0.0)
            ard = ElmoreAnalyzer(t, tech).ard_bruteforce()
            other_root = t.terminal_indices()[-1]
            t2 = t.rerooted(other_root)
            assert ElmoreAnalyzer(t2, tech).ard_bruteforce() == pytest.approx(ard)
