"""Tests for the observability layer (``repro.obs``).

Covers the recording primitives (span nesting, exception safety, the
disabled fast path), the cross-process story (counter/histogram merge from
pool workers, the inline mark/summary delta path), the JSONL trace format
round-trip, the ``REPRO_CHECK`` DP-conservation contract, the `repro-msri
trace` CLI wrapper, and the markdown link checker that guards the
observability contract document itself.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.executor import Job, run_jobs
from repro.analysis.render import render_flame_svg, render_trace_summary
from repro.check.contracts import ContractViolation, verify_msri_node_conservation
from repro.core.msri import MSRIOptions, insert_repeaters
from repro.obs import core as obs
from repro.obs.export import TRACE_SCHEMA, export_jsonl, load_jsonl
from repro.tech import Buffer, Repeater, RepeaterLibrary, Technology

from ._obs_jobs import counting_job, failing_job
from .conftest import y_net

TECH = Technology(unit_resistance=0.1, unit_capacitance=0.01, name="test")
REP = Repeater.from_buffer_pair(
    Buffer("f", intrinsic_delay=20.0, output_resistance=50.0,
           input_capacitance=0.05, cost=1.0),
    Buffer("b", intrinsic_delay=20.0, output_resistance=50.0,
           input_capacitance=0.05, cost=1.0),
)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with empty buffers and recording off."""
    obs.set_enabled(False)
    obs.reset()
    yield
    obs.set_enabled(None)
    obs.reset()


class TestSpans:
    def test_nesting_builds_slash_paths(self):
        with obs.observing():
            with obs.trace("outer", a=1):
                with obs.trace("inner"):
                    pass
                with obs.trace("inner"):
                    pass
            snap = obs.snapshot()
        paths = [s["path"] for s in snap["spans"]]
        # children close before the parent
        assert paths == ["outer/inner", "outer/inner", "outer"]
        outer = snap["spans"][-1]
        assert outer["attrs"] == {"a": 1}
        assert outer["dur_s"] >= 0.0

    def test_exception_recorded_and_reraised(self):
        with obs.observing():
            with pytest.raises(ValueError, match="boom"):
                with obs.trace("job"):
                    raise ValueError("boom")
            # the stack unwound: a sibling span is NOT nested under "job"
            with obs.trace("after"):
                pass
            snap = obs.snapshot()
        by_name = {s["name"]: s for s in snap["spans"]}
        assert by_name["job"]["attrs"]["error"] == "ValueError"
        assert by_name["after"]["path"] == "after"

    def test_set_attaches_attributes_mid_span(self):
        with obs.observing():
            with obs.trace("run") as span:
                span.set(nodes=7)
            snap = obs.snapshot()
        assert snap["spans"][0]["attrs"]["nodes"] == 7

    def test_disabled_is_inert(self):
        c = obs.Counter("testobs.off")
        h = obs.Histogram("testobs.off.h")
        with obs.trace("never", x=1):
            c.add()
            h.observe(3)
            obs.point("never.p", k=1)
        snap = obs.snapshot()
        assert snap["counters"] == {}
        assert snap["hists"] == {}
        assert snap["spans"] == [] and snap["points"] == []
        assert obs.trace("x") is obs.NULL_SPAN


class TestMergeAndSummaries:
    def test_merge_adds_counters_and_folds_hist_extremes(self):
        with obs.observing():
            obs.Counter("testobs.units").add(2)
            obs.Histogram("testobs.width").observe(10)
            remote = {
                "counters": {"testobs.units": 3, "testobs.other": 1},
                "hists": {"testobs.width": [2, 7.0, 1.0, 6.0]},
                "spans": [{"name": "w", "path": "w", "dur_s": 0.5, "attrs": {}}],
                "points": [],
                "dropped": 2,
                "pid": 99999,
            }
            obs.merge(remote)
            snap = obs.snapshot()
        assert snap["counters"] == {"testobs.units": 5, "testobs.other": 1}
        assert snap["hists"]["testobs.width"] == [3, 17.0, 1.0, 10.0]
        assert snap["dropped"] == 2
        # merged spans are tagged with the source pid
        merged = [s for s in snap["spans"] if s["name"] == "w"]
        assert merged[0]["pid"] == 99999
        assert obs.merge(None) is None  # worker ran with obs off: no-op

    def test_summarize_shape_and_empty_none(self):
        with obs.observing():
            with obs.trace("a"):
                with obs.trace("b"):
                    pass
            obs.Counter("testobs.n").add(4)
            summary = obs.summarize(obs.snapshot())
        assert summary["counters"] == {"testobs.n": 4}
        assert set(summary["spans"]) == {"a", "a/b"}
        count, total = summary["spans"]["a/b"]
        assert count == 1 and total >= 0.0
        assert obs.summarize({"counters": {}, "spans": []}) is None

    def test_mark_summary_since_is_a_delta(self):
        with obs.observing():
            obs.Counter("testobs.n").add(10)
            with obs.trace("before"):
                pass
            m = obs.mark()
            obs.Counter("testobs.n").add(5)
            with obs.trace("after"):
                pass
            delta = obs.summary_since(m)
        assert delta["counters"] == {"testobs.n": 5}
        assert set(delta["spans"]) == {"after"}


class TestWorkerMerge:
    def test_counters_merge_across_pool_workers(self, monkeypatch):
        # env var covers spawn-start pools; the in-process flag covers fork
        monkeypatch.setenv("REPRO_OBS", "1")
        obs.set_enabled(True)
        jobs = [Job(key=(seed,), args=(seed, seed + 1)) for seed in range(4)]
        outcomes = run_jobs(counting_job, jobs, workers=2)
        assert [o.result for o in outcomes] == [1, 1002, 2003, 3004]
        snap = obs.snapshot()
        # 1 + 2 + 3 + 4 units across both workers, merged exactly
        assert snap["counters"]["testobs.units"] == 10
        assert snap["hists"]["testobs.width"] == [4, 10, 1, 4]
        # per-job summaries: each job saw exactly its own units
        per_job = sorted(
            o.metrics.obs["counters"]["testobs.units"] for o in outcomes
        )
        assert per_job == [1, 2, 3, 4]
        # worker spans merged into the parent trace under executor paths
        # (fork-started workers inherit the parent's open-span prefix, so
        # only the tail of the path is start-method-independent)
        paths = {s["path"] for s in snap["spans"]}
        assert "executor.run" in paths
        assert any(p.endswith("executor.job/testobs.work") for p in paths)

    def test_failed_job_still_ships_obs_summary(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        obs.set_enabled(True)
        outcomes = run_jobs(
            failing_job, [Job(key=(0,), args=(0, 7))], workers=1
        )
        assert outcomes[0].failure is not None
        assert outcomes[0].metrics.obs["counters"]["testobs.units"] == 7
        assert obs.snapshot()["counters"]["testobs.units"] == 7

    def test_inline_path_preserves_enclosing_spans(self):
        with obs.observing():
            with obs.trace("campaign.run"):
                jobs = [Job(key=(s,), args=(s, 2)) for s in range(2)]
                outcomes = run_jobs(counting_job, jobs, workers=0)
            snap = obs.snapshot()
        for o in outcomes:
            assert o.metrics.obs["counters"]["testobs.units"] == 2
        paths = {s["path"] for s in snap["spans"]}
        # the enclosing span survived the per-job delta mechanism, and the
        # inline jobs nested inside it
        assert "campaign.run" in paths
        assert "campaign.run/executor.run/executor.job/testobs.work" in paths


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        with obs.observing():
            with obs.trace("msri.run", nodes=2):
                obs.Counter("msri.nodes").add(2)
                obs.Histogram("msri.front_width").observe(3)
                obs.point("msri.node", node=0, generated=4, kept=3, pruned=1)
            snap = obs.snapshot()
        path = tmp_path / "t.jsonl"
        assert export_jsonl(str(path), snap) == str(path)
        lines = [json.loads(l) for l in path.read_text().splitlines() if l]
        assert lines[0]["type"] == "meta" and lines[0]["schema"] == TRACE_SCHEMA
        back = load_jsonl(str(path))
        assert back["counters"] == snap["counters"]
        assert back["hists"] == {"msri.front_width": [1, 3, 3, 3]}
        assert back["points"][0]["attrs"]["generated"] == 4
        assert [s["path"] for s in back["spans"]] == ["msri.run"]

    def test_load_skips_torn_and_unknown_lines(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"type": "meta", "schema": 1, "pid": 1, "dropped": 0}\n'
            '{"type": "counter", "name": "ok", "value": 1}\n'
            '{"type": "mystery", "payload": true}\n'
            '{"type": "counter", "name": "torn", "va'  # truncated mid-write
        )
        back = load_jsonl(str(path))
        assert back["counters"] == {"ok": 1}

    def test_renderers_accept_round_trip(self, tmp_path):
        with obs.observing():
            with obs.trace("a"):
                with obs.trace("b"):
                    pass
            obs.Counter("n").add(3)
            snap = obs.snapshot()
        path = tmp_path / "t.jsonl"
        export_jsonl(str(path), snap)
        text = render_trace_summary(load_jsonl(str(path)))
        assert "a" in text and "n" in text
        svg = tmp_path / "f.svg"
        render_flame_svg(load_jsonl(str(path)), str(svg))
        assert svg.read_text().startswith("<svg")
        assert render_trace_summary({"counters": {}}) == "(empty trace)"


class TestConservationContract:
    def test_verify_accepts_valid_accounting(self):
        verify_msri_node_conservation(3, generated=10, kept=7)

    def test_verify_rejects_kept_exceeding_generated(self):
        with pytest.raises(ContractViolation):
            verify_msri_node_conservation(3, generated=5, kept=6)

    def test_verify_rejects_negative_counts(self):
        with pytest.raises(ContractViolation):
            verify_msri_node_conservation(0, generated=-1, kept=0)

    def test_msri_points_conserve_end_to_end(self):
        tree = y_net()
        with obs.observing():
            result = insert_repeaters(
                tree, TECH, MSRIOptions(library=RepeaterLibrary([REP]))
            )
            snap = obs.snapshot()
        assert result.solutions
        points = [p for p in snap["points"] if p["name"] == "msri.node"]
        assert len(points) == snap["counters"]["msri.nodes"] > 0
        for p in points:
            a = p["attrs"]
            assert a["generated"] == a["kept"] + a["pruned"]
        c = snap["counters"]
        assert (
            c["msri.solutions.generated"]
            == c["msri.solutions.kept"] + c["msri.solutions.pruned"]
        )


class TestTraceCli:
    def test_trace_wraps_a_subcommand(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_OBS", raising=False)
        net = tmp_path / "net.json"
        assert main(["generate", "--seed", "0", "--pins", "4",
                     "-o", str(net)]) == 0
        trace = tmp_path / "trace.jsonl"
        svg = tmp_path / "flame.svg"
        capsys.readouterr()
        status = main(["trace", "-o", str(trace), "--svg", str(svg),
                       "ard", str(net)])
        assert status == 0
        out = capsys.readouterr().out
        assert "trace written to" in out and "spans" in out
        back = load_jsonl(str(trace))
        assert any(s["name"] == "ard.full_pass" for s in back["spans"])
        assert back["counters"]["ard.record_pass.nodes"] > 0
        assert svg.exists()
        # the wrapper restored the pre-trace state
        assert "REPRO_OBS" not in os.environ
        assert not obs.enabled()

    def test_trace_requires_a_subcommand(self, capsys):
        from repro.cli import main

        assert main(["trace"]) == 2
        assert main(["trace", "trace", "ard", "x.json"]) == 2


class TestLinkChecker:
    def test_flags_broken_target_and_anchor(self, tmp_path):
        from repro.check.links import check_file

        good = tmp_path / "good.md"
        good.write_text("# A Heading\n\nsee [self](#a-heading)\n")
        doc = tmp_path / "doc.md"
        doc.write_text(
            "see [ok](good.md), [ok anchor](good.md#a-heading),\n"
            "[gone](missing.md) and [bad anchor](good.md#nope)\n"
            "```\n[not a link](also-missing.md) inside a fence\n```\n"
            "and `[inline](code-span.md)` plus [web](https://example.com)\n"
        )
        problems = check_file(str(doc))
        assert len(problems) == 2
        assert "missing.md" in problems[0]
        assert "#nope" in problems[1]

    def test_repo_docs_are_clean(self):
        import glob

        from repro.check.links import main as links_main

        root = os.path.join(os.path.dirname(__file__), "..")
        files = [os.path.join(root, "README.md")] + sorted(
            glob.glob(os.path.join(root, "docs", "*.md"))
        )
        assert links_main(files) == 0
