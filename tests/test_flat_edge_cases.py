"""Edge-case corpus for the flat kernel: degenerate nets, depth stress,
role-less terminals and exact error parity with the reference engines.

Everything here is numpy-free by construction (deterministic net builders
only, ``backend="python"``), so this module runs verbatim on the
without-numpy CI leg.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.check import contracts
from repro.core.ard import ard
from repro.netgen.random_nets import NetSpec, chain_net, star_net
from repro.netgen.workloads import (
    paper_net_spec,
    paper_repeater_library,
    paper_technology,
)
from repro.rctree.builder import TreeBuilder
from repro.rctree.engine import EvalContext
from repro.rctree.flat import HAVE_NUMPY, FlatARDEngine
from repro.rctree.incremental import IncrementalARD
from repro.tech.terminals import NEVER, Terminal

TECH = paper_technology()


def _term(name, x, y, **kw):
    spec = paper_net_spec()
    kw.setdefault("capacitance", spec.capacitance)
    kw.setdefault("resistance", spec.resistance)
    kw.setdefault("intrinsic_delay", spec.intrinsic_delay)
    return Terminal(name, x, y, **kw)


def _two_node_net(*, src_alpha=0.0, snk_alpha=0.0, snk_beta=0.0):
    builder = TreeBuilder()
    a = builder.add_terminal(_term("a", 0.0, 0.0, arrival_time=src_alpha))
    b = builder.add_terminal(
        _term("b", 1000.0, 0.0, arrival_time=snk_alpha, downstream_delay=snk_beta)
    )
    builder.connect(a, b)
    return builder.build(root=a)


def _flat(tree, context=None, **kw):
    kw.setdefault("backend", "python")
    return FlatARDEngine(tree, TECH, context=context, **kw)


def _same_error(make_reference, make_flat):
    """Both constructors must fail with the same type and message."""
    with pytest.raises(Exception) as ref_info:
        make_reference()
    with pytest.raises(Exception) as flat_info:
        make_flat()
    assert type(flat_info.value) is type(ref_info.value), (
        flat_info.value,
        ref_info.value,
    )
    assert str(flat_info.value) == str(ref_info.value)


class TestDegenerateNets:
    def test_two_node_net_matches_reference(self):
        tree = _two_node_net()
        with contracts.checking():
            ref = ard(tree, TECH)
            res = _flat(tree, include_timing=True).evaluate()
        assert res.value == ref.value
        assert (res.source, res.sink) == (ref.source, ref.sink)
        assert res.timing == ref.timing

    def test_single_segment_chain(self):
        tree = chain_net(1, paper_net_spec())
        with contracts.checking():
            assert _flat(tree).evaluate().value == ard(tree, TECH).value

    @pytest.mark.parametrize("n_leaves", [2, 3, 17])
    def test_star_fanout(self, n_leaves):
        tree = star_net(n_leaves, paper_net_spec())
        with contracts.checking():
            ref = ard(tree, TECH)
            res = _flat(tree, include_timing=True).evaluate()
        assert res.value == ref.value
        assert res.timing == ref.timing

    def test_chain_with_repeaters(self):
        tree = chain_net(8, paper_net_spec())
        rep = paper_repeater_library().oriented_options()[0]
        assignment = {idx: rep for idx in tree.insertion_indices()[::2]}
        context = EvalContext(assignment=assignment)
        with contracts.checking():
            ref = ard(tree, TECH, context=context)
            res = _flat(tree, context).evaluate()
        assert res.value == ref.value


class TestDepthStress:
    def test_10k_node_path_graph_no_recursion_limit(self):
        """A 10k-segment chain is ~20x the default recursion limit; every
        traversal in the flat pipeline (compile, kernel, Eq. 2, timing
        table, path walk) must be iterative."""
        tree = chain_net(10_000, paper_net_spec())
        assert len(tree) > 10_000
        engine = _flat(tree, include_timing=True)
        ref = ard(tree, TECH)
        res = engine.evaluate()
        assert res.value == ref.value
        assert (res.source, res.sink) == (ref.source, ref.sink)
        head, tail = res.source, res.sink
        assert engine.path_delay(head, tail) == IncrementalARD(
            tree, TECH
        ).path_delay(head, tail)


class TestRolelessTerminals:
    def test_all_sinks_net_has_undefined_ard(self):
        tree = _two_node_net(src_alpha=NEVER, snk_alpha=NEVER)
        with contracts.checking():
            ref = ard(tree, TECH)
            res = _flat(tree).evaluate()
        assert res.value == ref.value == NEVER
        assert not res.is_finite
        assert (res.source, res.sink) == (ref.source, ref.sink) == (None, None)

    def test_all_sources_net_has_undefined_ard(self):
        spec = dataclasses.replace(paper_net_spec(), downstream_delay=NEVER)
        tree = star_net(3, spec)
        with contracts.checking():
            ref = ard(tree, TECH)
            res = _flat(tree).evaluate()
        assert res.value == ref.value == NEVER
        assert (res.source, res.sink) == (None, None)

    def test_mixed_roles_match_reference(self):
        spec = NetSpec()
        tree = star_net(4, spec)
        overrides = {}
        for k, idx in enumerate(tree.terminal_indices()):
            term = tree.node(idx).terminal
            if k % 2:
                overrides[idx] = term.as_sink_only()
            else:
                overrides[idx] = term.as_source_only()
        flat = _flat(tree, include_timing=True)
        inc = IncrementalARD(tree, TECH)
        for idx, term in overrides.items():
            flat.set_terminal(idx, term)
            inc.set_terminal(idx, term)
        with contracts.checking():
            assert flat.evaluate().value == inc.evaluate().value


class TestErrorParity:
    """The flat compiler re-raises the EvalState validation errors verbatim."""

    def _tree(self):
        return chain_net(4, paper_net_spec())

    def test_unknown_assignment_node(self):
        tree = self._tree()
        rep = paper_repeater_library().oriented_options()[0]
        ctx = EvalContext(assignment={999: rep})
        _same_error(
            lambda: IncrementalARD(tree, TECH, context=ctx),
            lambda: _flat(tree, ctx),
        )

    def test_repeater_on_non_insertion_node(self):
        tree = self._tree()
        rep = paper_repeater_library().oriented_options()[0]
        ctx = EvalContext(assignment={tree.root: rep})
        _same_error(
            lambda: IncrementalARD(tree, TECH, context=ctx),
            lambda: _flat(tree, ctx),
        )

    def test_assignment_value_not_a_repeater(self):
        tree = self._tree()
        idx = tree.insertion_indices()[0]
        ctx = EvalContext(assignment={idx: "not-a-repeater"})
        _same_error(
            lambda: IncrementalARD(tree, TECH, context=ctx),
            lambda: _flat(tree, ctx),
        )

    def test_nonpositive_wire_width(self):
        tree = self._tree()
        ctx = EvalContext(wire_widths={1: 0.0})
        _same_error(
            lambda: IncrementalARD(tree, TECH, context=ctx),
            lambda: _flat(tree, ctx),
        )

    def test_wire_width_on_root_is_not_an_edge(self):
        tree = self._tree()
        ctx = EvalContext(wire_widths={tree.root: 1.5})
        _same_error(
            lambda: IncrementalARD(tree, TECH, context=ctx),
            lambda: _flat(tree, ctx),
        )

    def test_path_delay_error_parity(self):
        tree = self._tree()
        flat = _flat(tree)
        inc = IncrementalARD(tree, TECH)
        steiner_or_ip = tree.insertion_indices()[0]
        a, b = tree.terminal_indices()[:2]
        _same_error(
            lambda: inc.path_delay(steiner_or_ip, b),
            lambda: flat.path_delay(steiner_or_ip, b),
        )
        _same_error(
            lambda: inc.path_delay(a, a),
            lambda: flat.path_delay(a, a),
        )

    def test_path_delay_from_pure_sink(self):
        tree = _two_node_net(src_alpha=0.0)
        sink = [
            i
            for i in tree.terminal_indices()
            if i != tree.root
        ][0]
        term = tree.node(sink).terminal.as_sink_only()
        flat = _flat(tree)
        inc = IncrementalARD(tree, TECH)
        flat.set_terminal(sink, term)
        inc.set_terminal(sink, term)
        _same_error(
            lambda: inc.path_delay(sink, tree.root),
            lambda: flat.path_delay(sink, tree.root),
        )


class TestBackendResolution:
    def test_unknown_backend_rejected(self):
        tree = _two_node_net()
        with pytest.raises(ValueError, match="unknown backend"):
            FlatARDEngine(tree, TECH, backend="fortran")

    @pytest.mark.skipif(HAVE_NUMPY, reason="exercises the no-numpy path")
    def test_numpy_backend_unavailable_raises(self):
        tree = _two_node_net()
        with pytest.raises(ValueError, match="numpy is not installed"):
            FlatARDEngine(tree, TECH, backend="numpy")

    def test_auto_small_net_is_python(self):
        tree = _two_node_net()
        assert FlatARDEngine(tree, TECH, backend="auto").backend == "python"
