"""Differential lockdown of the flat array kernel against the reference pass.

The flat kernel (:mod:`repro.rctree.flat`) re-derives the Eq. 1 / Eq. 2 /
Fig. 2 recursions as index loops over contiguous arrays.  Its contract is
*bit identity* — not closeness — with the reference record pass
(:func:`repro.core.ard.ard`) and the incremental engine, because every
float expression was ported with an identical evaluation tree.  This suite
holds that contract over ~500 randomized nets (varying fan-out, depth,
degenerate chains and stars, random repeater assignments and wire widths),
on both compile backends, with the runtime contracts armed
(``REPRO_CHECK=1`` semantics via :func:`repro.check.contracts.checking`).

Every assertion is ``==`` on floats by design: a single ULP of divergence
is a porting bug, and rounding-tolerant comparisons would mask it.
"""

from __future__ import annotations

import random

import pytest

from repro.check import contracts
from repro.core.ard import ard
from repro.netgen.random_nets import NetSpec, chain_net, random_net, star_net
from repro.netgen.workloads import (
    paper_net_spec,
    paper_repeater_library,
    paper_technology,
)
from repro.rctree.engine import EvalContext
from repro.rctree.flat import HAVE_NUMPY, FlatARDEngine, evaluate_batch
from repro.rctree.incremental import IncrementalARD

N_NETS = 500
BASE_SEED = 0xF1A7
SPACING_CHOICES = (400.0, 800.0, 1600.0, None)

BACKENDS = ("python", "numpy") if HAVE_NUMPY else ("python",)


def _random_case(seed: int):
    """One net + knobs: random topology, assignment and wire widths.

    Seeds 7 and 8 mod 10 swap in the degenerate constructors (path graphs
    and stars) so maximal depth and maximal fan-out stay in the corpus.
    """
    rng = random.Random((BASE_SEED << 20) | seed)
    shape = seed % 10
    if shape == 7:
        tree = chain_net(rng.randint(1, 40), paper_net_spec())
    elif shape == 8:
        tree = star_net(rng.randint(2, 16), paper_net_spec())
    else:
        n_pins = rng.randint(3, 9)
        spacing = SPACING_CHOICES[rng.randrange(len(SPACING_CHOICES))]
        tree = random_net(seed, n_pins, paper_net_spec(), spacing=spacing)

    options = paper_repeater_library().oriented_options()
    assignment = {
        idx: rng.choice(options)
        for idx in tree.insertion_indices()
        if rng.random() < 0.3
    }
    widths = {
        idx: rng.uniform(0.5, 3.0)
        for idx in range(len(tree))
        if idx != tree.root and rng.random() < 0.2
    }
    context = EvalContext(
        assignment=assignment or None,
        wire_widths=widths or None,
        include_companion_cap=(seed % 7 == 3),
    )
    return tree, context


def _assert_timing_identical(flat_timing, ref_timing, context: str) -> None:
    """Full per-node A_v / D_v / Z_v vectors, bit-for-bit."""
    assert set(flat_timing) == set(ref_timing), f"{context}: node sets differ"
    for v in ref_timing:
        f, r = flat_timing[v], ref_timing[v]
        assert f == r, f"{context}: node {v}: flat {f!r} != reference {r!r}"


class TestFlatDifferential:
    def test_bit_identical_to_reference_on_500_nets(self):
        tech = paper_technology()
        checked = 0
        with contracts.checking():
            for seed in range(N_NETS):
                tree, context = _random_case(seed)
                ref = ard(tree, tech, context=context)
                inc = IncrementalARD(tree, tech, context=context).evaluate()
                assert inc.value == ref.value
                assert (inc.source, inc.sink) == (ref.source, ref.sink)
                for backend in BACKENDS:
                    engine = FlatARDEngine(
                        tree,
                        tech,
                        context=context,
                        backend=backend,
                        include_timing=True,
                    )
                    res = engine.evaluate()
                    ctx = f"seed {seed} backend {backend}"
                    assert res.value == ref.value, (
                        f"{ctx}: {res.value!r} != {ref.value!r}"
                    )
                    assert (res.source, res.sink) == (ref.source, ref.sink), ctx
                    _assert_timing_identical(res.timing, ref.timing, ctx)
                checked += 1
        assert checked == N_NETS

    def test_path_delays_identical_across_engines(self):
        """Every source→sink path delay agrees with both reference engines."""
        from repro.rctree.elmore import ElmoreAnalyzer

        tech = paper_technology()
        with contracts.checking():
            for seed in range(0, N_NETS, 25):
                tree, context = _random_case(seed)
                elmore = ElmoreAnalyzer(tree, tech, context=context)
                inc = IncrementalARD(tree, tech, context=context)
                flat = FlatARDEngine(tree, tech, context=context)
                terminals = tree.terminal_indices()
                sources = [
                    t
                    for t in terminals
                    if tree.node(t).terminal.is_source
                ]
                for src in sources:
                    for dst in terminals:
                        if dst == src:
                            continue
                        want = elmore.path_delay(src, dst)
                        assert inc.path_delay(src, dst) == want, (seed, src, dst)
                        assert flat.path_delay(src, dst) == want, (seed, src, dst)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_evaluation_matches_per_net(self, backend):
        tech = paper_technology()
        cases = [_random_case(seed) for seed in range(0, N_NETS, 10)]
        nets = [tree for tree, _ in cases]
        contexts = [context for _, context in cases]
        with contracts.checking():
            batch = evaluate_batch(
                nets, tech, contexts=contexts, backend=backend, include_timing=True
            )
            assert len(batch) == len(nets)
            for (tree, context), res in zip(cases, batch):
                ref = ard(tree, tech, context=context)
                assert res.value == ref.value
                assert (res.source, res.sink) == (ref.source, ref.sink)
                _assert_timing_identical(res.timing, ref.timing, "batch")

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs both compile backends")
    def test_backends_agree_with_each_other(self):
        """python- and numpy-compiled nets produce identical columns."""
        from repro.rctree.flat import compile_net

        tech = paper_technology()
        for seed in range(0, N_NETS, 7):
            tree, context = _random_case(seed)
            py = compile_net(tree, tech, context, use_numpy=False)
            np_ = compile_net(tree, tech, context, use_numpy=True)
            assert py.wire_cap == np_.wire_cap, seed
            assert py.wire_res == np_.wire_res, seed
            assert py.leaf_base == np_.leaf_base, seed

    def test_randomized_boundary_penalties(self):
        """Nonzero alpha/beta terms flow through identically (Sec. III)."""
        tech = paper_technology()
        with contracts.checking():
            for seed in range(40):
                rng = random.Random(BASE_SEED + seed)
                spec = NetSpec(
                    arrival_time=rng.uniform(0.0, 200.0),
                    downstream_delay=rng.uniform(0.0, 200.0),
                )
                tree = random_net(seed, rng.randint(3, 7), spec)
                ref = ard(tree, tech)
                for backend in BACKENDS:
                    res = FlatARDEngine(
                        tree, tech, backend=backend, include_timing=True
                    ).evaluate()
                    assert res.value == ref.value, seed
                    _assert_timing_identical(res.timing, ref.timing, str(seed))
