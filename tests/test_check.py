"""Tests for the ``repro.check`` subsystem: lint engine, rules, contracts.

Fixture files in ``tests/fixtures/check`` each seed one known violation;
the engine must report exactly that rule on them and nothing on the clean
file.  The contract layer must catch injected violations of the paper's
invariants (Pareto domination after pruning, negative Eq. 1/2 capacitance)
and stay silent on healthy runs.
"""

import json
from pathlib import Path

import pytest

from repro.check import (
    ContractViolation,
    LintEngine,
    checking,
    contracts_enabled,
    set_enabled,
)
from repro.check import contracts
from repro.check.cli import main as lint_main
from repro.check.rules import DEFAULT_RULES, rules_by_id
from repro.cli import main as repro_main
from repro.core.ard import ARDResult, ard
from repro.core.intervals import IntervalSet
from repro.core.msri import MSRIOptions, insert_repeaters
from repro.core.pwl import PWL, Segment
from repro.core.solution import RootSolution, Solution, Trace
from repro.rctree.elmore import ElmoreAnalyzer
from repro.tech import Buffer, Repeater, RepeaterLibrary, Technology

from .conftest import two_pin_net, y_net

FIXTURES = Path(__file__).parent / "fixtures" / "check"
SRC = Path(__file__).resolve().parents[1] / "src"

TECH = Technology(unit_resistance=0.1, unit_capacitance=0.01, name="test")
LIB = RepeaterLibrary(
    [
        Repeater.from_buffer_pair(
            Buffer("b", intrinsic_delay=20.0, output_resistance=50.0,
                   input_capacitance=0.25),
            name="rep",
        )
    ]
)


def lint_fixture(name):
    source = (FIXTURES / name).read_text()
    # a neutral path: fixtures live under tests/, which R003 exempts
    return LintEngine().lint_source(source, path=name)


# -- rule catalogue -----------------------------------------------------------


def test_rule_catalogue_is_complete():
    ids = [rule.rule_id for rule in DEFAULT_RULES]
    assert ids == [
        "R001", "R002", "R003", "R004", "R005",
        "R006", "R007", "R008", "R009", "R010",
    ]
    assert set(rules_by_id()) == set(ids)
    assert all(rule.description for rule in DEFAULT_RULES)
    assert all(rule.severity in ("error", "warning") for rule in DEFAULT_RULES)


# -- seeded fixtures: each triggers exactly its rule --------------------------


@pytest.mark.parametrize(
    "fixture, rule_id, lines",
    [
        ("r001_float_eq.py", "R001", [5, 7]),
        ("r002_set_iteration.py", "R002", [7]),
        ("r003_assert.py", "R003", [9]),
        ("r004_mutable_default.py", "R004", [4]),
        ("r005_tech_mutation.py", "R005", [5]),
        ("r006_dimensions.py", "R006", [5]),
        ("r007_interproc.py", "R007", [14]),
        ("r008_parallel.py", "R008", [12, 18]),
        ("r009_determinism.py", "R009", [16, 20]),
        ("r010_protocol.py", "R010", [11, 19]),
        ("r010_editable.py", "R010", [12, 12, 30]),
    ],
)
def test_fixture_triggers_exactly_its_rule(fixture, rule_id, lines):
    findings = lint_fixture(fixture)
    assert [f.rule_id for f in findings] == [rule_id] * len(lines)
    assert [f.line for f in findings] == lines


@pytest.mark.parametrize(
    "fixture",
    [
        "clean.py",
        "r007_interproc_ok.py",
        "r008_parallel_ok.py",
        "r009_determinism_ok.py",
        "r010_protocol_ok.py",
    ],
)
def test_clean_fixture_has_no_findings(fixture):
    assert lint_fixture(fixture) == []


def test_fixture_directory_walk_aggregates_all_rules():
    # lint_paths sees the real paths (under tests/), so the test-file
    # carve-out silences R003, R008 and R010; R007 has no test exemption
    # (dimension algebra holds in tests too) and must survive the walk,
    # proving interprocedural edges exist dir-wide; R009 degrades to its
    # test-corpus mode, which still flags the global-RNG call (line 16 of
    # the r009 fixture) but not the id() ordering or engine-closure cases
    findings = LintEngine().lint_paths([str(FIXTURES)])
    by_rule = {}
    for f in findings:
        by_rule.setdefault(f.rule_id, []).append(f)
    assert set(by_rule) == {
        "R001", "R002", "R004", "R005", "R006", "R007", "R009",
    }
    assert len(by_rule["R001"]) == 2
    assert len(by_rule["R007"]) == 1
    assert [f.line for f in by_rule["R009"]] == [16]
    assert "test corpus" in by_rule["R009"][0].message


# -- R009 test-corpus mode ----------------------------------------------------


TEST_RNG_SOURCE = """\
import random
import numpy as np


def test_unseeded_corpus():
    x = random.uniform(0.0, 1.0)
    rng = np.random.default_rng()
    return x, rng.normal(), np.random.rand(3)
"""


def test_r009_flags_global_rng_in_test_files():
    findings = LintEngine().lint_source(
        TEST_RNG_SOURCE, path="tests/test_corpus.py"
    )
    r009 = [f for f in findings if f.rule_id == "R009"]
    assert [f.line for f in r009] == [6, 7, 8]
    assert "random.uniform" in r009[0].message
    assert "default_rng" in r009[1].message
    assert "legacy numpy global RNG" in r009[2].message


def test_r009_allows_seeded_instances_in_test_files():
    src = (
        "import random\n"
        "import numpy as np\n\n\n"
        "def test_seeded_corpus():\n"
        "    rng = random.Random(7)\n"
        "    nrng = np.random.default_rng(7)\n"
        "    return rng.uniform(0.0, 1.0), nrng.normal()\n"
    )
    findings = LintEngine().lint_source(src, path="tests/test_corpus.py")
    assert [f for f in findings if f.rule_id == "R009"] == []


def test_r009_repo_corpora_are_seed_reproducible():
    """The real test/benchmark/netgen corpora carry no global-RNG use."""
    repo = Path(__file__).resolve().parent.parent
    paths = [
        str(repo / "tests"),
        str(repo / "benchmarks"),
        str(repo / "src" / "repro" / "netgen"),
    ]
    findings = LintEngine().lint_paths(paths)
    offenders = [
        f
        for f in findings
        if f.rule_id == "R009" and "fixtures" not in f.path
    ]
    assert offenders == [], [(f.path, f.line, f.message) for f in offenders]


# -- suppression syntax -------------------------------------------------------


def test_noqa_suppresses_matching_rule():
    src = "def f(spread):\n    return spread == 0.0  # repro: noqa[R001] sentinel\n"
    assert LintEngine().lint_source(src) == []


def test_noqa_with_wrong_rule_id_does_not_suppress():
    src = "def f(spread):\n    return spread == 0.0  # repro: noqa[R002]\n"
    findings = LintEngine().lint_source(src)
    assert [f.rule_id for f in findings] == ["R001"]


def test_bare_noqa_suppresses_everything_on_the_line():
    src = "def f(resistance, delay):\n    return resistance + delay == 0.0  # repro: noqa\n"
    assert LintEngine().lint_source(src) == []


def test_noqa_list_suppresses_multiple_rules():
    src = (
        "def f(resistance, delay):\n"
        "    return resistance + delay == 0.0  # repro: noqa[R001,R006]\n"
    )
    assert LintEngine().lint_source(src) == []


# -- engine behavior ----------------------------------------------------------


def test_syntax_error_reported_as_e999():
    findings = LintEngine().lint_source("def broken(:\n", path="bad.py")
    assert [f.rule_id for f in findings] == ["E999"]


def test_r003_exempts_test_files():
    src = "def helper():\n    assert 1 + 1 == 2\n"
    assert LintEngine().lint_source(src, path="tests/test_foo.py") == []
    assert len(LintEngine().lint_source(src, path="src/repro/foo.py")) == 1


def test_repro_source_tree_is_clean():
    """The CI gate: repro-lint src/ must exit clean on the shipped tree."""
    assert LintEngine().lint_paths([str(SRC)]) == []


def test_benchmarks_and_examples_are_clean():
    """The widened CI gate: benchmarks/ and examples/ lint clean too."""
    root = SRC.parent
    findings = LintEngine().lint_paths(
        [str(root / "benchmarks"), str(root / "examples")]
    )
    assert findings == []


# -- whole-program analysis: R007 vs the per-file R006 ------------------------


_CROSS_FUNCTION_MIX = """\
def total_delay(delay, extra):
    return delay + extra


def mix_caller(delay, resistance):
    return total_delay(delay, resistance)
"""


def test_r007_catches_cross_function_mix_that_r006_misses():
    """The tentpole regression: an Ω value passed into a ps-typed parameter
    is invisible to per-file name-based inference (``extra`` carries no
    declared dimension, and the call site has no arithmetic), but the
    interprocedural pass pins ``extra`` to ps from the callee's body and
    flags the call."""
    from repro.check.rules import DimensionRule

    # name-based R006 alone provably misses it...
    r006_only = LintEngine([DimensionRule()]).lint_source(
        _CROSS_FUNCTION_MIX, path="mix.py"
    )
    assert r006_only == []
    # ...while the full engine reports exactly the R007 call-site finding
    findings = LintEngine().lint_source(_CROSS_FUNCTION_MIX, path="mix.py")
    assert [f.rule_id for f in findings] == ["R007"]
    assert findings[0].line == 6
    assert "Ω" in findings[0].message and "ps" in findings[0].message


def test_r007_sees_calls_across_file_boundaries(tmp_path):
    callee = tmp_path / "callee.py"
    callee.write_text("def total_delay(delay, extra):\n    return delay + extra\n")
    caller = tmp_path / "caller.py"
    caller.write_text(
        "def mix_caller(delay, resistance):\n"
        "    return total_delay(delay, resistance)\n"
    )
    findings = LintEngine().lint_paths([str(tmp_path)])
    assert [f.rule_id for f in findings] == ["R007"]
    assert findings[0].path == str(caller)


def test_r006_uses_interprocedural_environment():
    """A parameter with contradictory evidence is erased, not guessed: the
    callee body stays silent under R006 while R007 indicts the caller."""
    findings = LintEngine().lint_source(_CROSS_FUNCTION_MIX, path="mix.py")
    assert not any(f.rule_id == "R006" for f in findings)


# -- CLI ----------------------------------------------------------------------


def test_cli_exit_codes(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("x = 1.0 == 1.0\n")
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    assert lint_main([str(bad)]) == 1
    assert lint_main([str(good)]) == 0
    assert lint_main(["--list-rules"]) == 0
    assert lint_main(["--select", "R999", str(good)]) == 2
    assert lint_main([str(tmp_path / "no_such_file.py")]) == 2


def test_cli_select_and_json(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(acc=[]):\n    return 1.0 == 2.0\n")
    assert lint_main(["--select", "R004", "--format", "json", str(bad)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in payload] == ["R004"]
    assert payload[0]["line"] == 1
    assert payload[0]["severity"] == "error"


def test_repro_msri_lint_subcommand(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("x = 1.0 != 2.0\n")
    assert repro_main(["lint", str(bad)]) == 1
    assert repro_main(["lint", "--select", "R003", str(bad)]) == 0


def test_cli_sarif_output(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("x = 1.0 == 1.0\n")
    assert lint_main(["--format", "sarif", str(bad)]) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert rule_ids == [rule.rule_id for rule in DEFAULT_RULES]
    (result,) = run["results"]
    assert result["ruleId"] == "R001"
    assert result["level"] == "error"
    loc = result["locations"][0]["physicalLocation"]
    assert loc["region"]["startLine"] == 1
    assert result["partialFingerprints"]["reproLintFingerprint/v1"]


def test_cli_sarif_clean_run_is_schema_shaped(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    assert lint_main(["--format", "sarif", str(good)]) == 0
    log = json.loads(capsys.readouterr().out)
    assert log["runs"][0]["results"] == []


def test_baseline_workflow_warn_then_error(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("x = 1.0 == 1.0\n")
    baseline = tmp_path / "baseline.json"
    # adopt the existing debt; exit 0
    assert lint_main(["--write-baseline", str(baseline), str(bad)]) == 0
    payload = json.loads(baseline.read_text())
    assert payload["version"] == 1 and len(payload["fingerprints"]) == 1
    capsys.readouterr()
    # baselined finding no longer fails the build
    assert lint_main(["--baseline", str(baseline), str(bad)]) == 0
    assert "baselined finding(s) suppressed" in capsys.readouterr().out
    # a new finding still fails, even with the same message elsewhere in file
    bad.write_text("x = 1.0 == 1.0\ny = 2.0 == 2.0\n")
    assert lint_main(["--baseline", str(baseline), str(bad)]) == 1
    out = capsys.readouterr().out
    assert "bad.py:2:" in out and "bad.py:1:" not in out


def test_baseline_identical_findings_are_not_conflated(tmp_path):
    """Two byte-identical violations get distinct occurrence fingerprints:
    baselining one must not grandfather in a second copy."""
    bad = tmp_path / "bad.py"
    bad.write_text("x = 1.0 == 1.0\n")
    baseline = tmp_path / "baseline.json"
    assert lint_main(["--write-baseline", str(baseline), str(bad)]) == 0
    bad.write_text("x = 1.0 == 1.0\nx = 1.0 == 1.0\n")
    assert lint_main(["--baseline", str(baseline), str(bad)]) == 1


def test_malformed_baseline_is_an_error(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("x = 1.0 == 1.0\n")
    baseline = tmp_path / "baseline.json"
    baseline.write_text('{"version": 99, "fingerprints": {}}')
    assert lint_main(["--baseline", str(baseline), str(bad)]) == 2


def test_changed_only_outside_scope(tmp_path, capsys):
    """--changed-only restricted to a scope with no changed files is a
    clean no-op (tmp_path is outside the repo's changed set)."""
    from repro.check.cli import run_lint

    scoped = tmp_path / "empty_scope"
    scoped.mkdir()
    assert run_lint([str(scoped)], changed_only="HEAD") == 0
    assert "no changed python files" in capsys.readouterr().out


def test_changed_files_reports_relative_paths():
    """Changed-file discovery returns repo paths scoped to the request."""
    from repro.check.cli import changed_files

    files = changed_files(["src"], base="HEAD")
    assert all(f.endswith(".py") for f in files)
    assert all(f.startswith("src") for f in files)


# -- contracts: enablement ----------------------------------------------------


def test_env_var_controls_contracts(monkeypatch):
    with monkeypatch.context() as m:
        m.setenv("REPRO_CHECK", "1")
        set_enabled(None)
        assert contracts_enabled()
        m.setenv("REPRO_CHECK", "0")
        set_enabled(None)
        assert not contracts_enabled()
    set_enabled(None)  # restore from the real environment


def test_checking_context_restores_previous_state():
    before = contracts_enabled()
    with checking():
        assert contracts_enabled()
        with checking(False):
            assert not contracts_enabled()
        assert contracts_enabled()
    assert contracts_enabled() == before


# -- contracts: injected violations ------------------------------------------


def _scalar_solution(cost, cap, lo=0.0, hi=1.0):
    from repro.tech.terminals import NEVER

    return Solution(
        cost=cost,
        cap=cap,
        q=NEVER,
        arr=None,
        diam=None,
        domain=IntervalSet.single(lo, hi),
    )


def test_injected_pareto_violation_is_caught():
    dominator = _scalar_solution(cost=1.0, cap=1.0)
    dominated = _scalar_solution(cost=2.0, cap=2.0)
    with pytest.raises(ContractViolation, match="strictly dominated"):
        contracts.verify_pareto([dominator, dominated])


def test_incomparable_solutions_pass_pareto_check():
    cheap_but_heavy = _scalar_solution(cost=1.0, cap=2.0)
    costly_but_light = _scalar_solution(cost=2.0, cap=1.0)
    contracts.verify_pareto([cheap_but_heavy, costly_but_light])


def test_injected_negative_capacitance_is_caught():
    analyzer = ElmoreAnalyzer(y_net(), TECH)
    contracts.verify_nonnegative_caps(analyzer)  # healthy tree passes
    analyzer._down[1] = -0.5  # corrupt the Eq. 1 pass
    with pytest.raises(ContractViolation, match="Eq. 1"):
        contracts.verify_nonnegative_caps(analyzer)


def test_injected_negative_upstream_capacitance_is_caught():
    analyzer = ElmoreAnalyzer(y_net(), TECH)
    victim = next(v for v in range(len(analyzer.tree))
                  if analyzer.tree.parent(v) is not None)
    analyzer._up[victim] = -1e-3
    with pytest.raises(ContractViolation, match="Eq. 2"):
        contracts.verify_nonnegative_caps(analyzer)


def test_corrupt_pwl_is_caught():
    p = PWL([Segment(0.0, 1.0, 0.0, 1.0)])
    p._segments = (
        Segment(0.5, 2.0, 0.0, 1.0),
        Segment(0.0, 1.0, 0.0, 1.0),
    )  # out of order and overlapping
    with pytest.raises(ContractViolation, match="out of order"):
        contracts.verify_pwl(p)


def test_non_monotone_root_front_is_caught():
    t = Trace()
    good = [
        RootSolution(cost=1.0, ard=100.0, trace=t),
        RootSolution(cost=2.0, ard=90.0, trace=t),
    ]
    contracts.verify_root_front(good)
    bad = [
        RootSolution(cost=1.0, ard=100.0, trace=t),
        RootSolution(cost=2.0, ard=110.0, trace=t),
    ]
    with pytest.raises(ContractViolation, match="not strictly monotone"):
        contracts.verify_root_front(bad)


def test_ard_inconsistency_is_caught():
    tree = y_net()
    analyzer = ElmoreAnalyzer(tree, TECH)
    honest = ard(tree, TECH)
    contracts.verify_ard_consistency(honest, analyzer)  # healthy result passes
    forged = ARDResult(
        value=honest.value + 123.0,
        source=honest.source,
        sink=honest.sink,
        timing={},
    )
    with pytest.raises(ContractViolation, match="ARD inconsistency"):
        contracts.verify_ard_consistency(forged, analyzer)


# -- contracts: healthy end-to-end runs under REPRO_CHECK ---------------------


def test_ard_passes_contracts_end_to_end():
    with checking():
        result = ard(y_net(), TECH)
    assert result.is_finite


def test_msri_passes_contracts_end_to_end():
    with checking():
        result = insert_repeaters(
            two_pin_net(length=2000.0), TECH, MSRIOptions(library=LIB)
        )
    assert result.solutions
    # and the same run with the pairwise-pruner ablation
    with checking():
        result2 = insert_repeaters(
            two_pin_net(length=2000.0),
            TECH,
            MSRIOptions(library=LIB, use_divide_and_conquer=False),
        )
    assert result2.tradeoff() == result.tradeoff()


def test_pwl_operations_pass_contracts():
    with checking():
        f = PWL.linear(1.0, 2.0, 0.0, 5.0)
        g = PWL.from_breakpoints([0.0, 2.0, 5.0], [4.0, 1.0, 7.0])
        h = f.maximum(g).add_linear(0.5, 0.25).shift(1.0)
    assert not h.is_empty
