"""Cross-cutting property-based tests on the electrical and DP models.

These probe *physical* invariants that any correct implementation must
satisfy, independent of the paper's specific numbers: shift/scale
covariance of Elmore delays, monotonicity of the ARD in its boundary
parameters, and monotonicity of the optimal frontier in the option set.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ard import ard
from repro.core.msri import MSRIOptions, insert_repeaters
from repro.core.pwl import PWL
from repro.rctree.topology import Node, NodeKind, RoutingTree
from repro.tech import Buffer, Repeater, RepeaterLibrary, Technology

from .conftest import random_topology

TECH = Technology(0.1, 0.01, name="test")
REP = Repeater.from_buffer_pair(Buffer("b", 20.0, 50.0, 0.25), name="rep")
BIG = Repeater.from_buffer_pair(Buffer("B", 20.0, 25.0, 0.5, cost=2.0), name="big")


def shifted_alphas(tree, delta):
    """Copy of the tree with every source's arrival time shifted by delta."""
    import dataclasses

    nodes = []
    for n in tree.nodes:
        if n.kind is NodeKind.TERMINAL and n.terminal.is_source:
            t = dataclasses.replace(
                n.terminal, arrival_time=n.terminal.arrival_time + delta
            )
            nodes.append(Node(n.index, n.x, n.y, n.kind, t))
        else:
            nodes.append(n)
    return RoutingTree(
        nodes,
        [tree.parent(i) for i in range(len(tree))],
        [tree.edge_length(i) for i in range(len(tree))],
    )


def scaled_resistances(tree, tech, k):
    """Scale every resistance (wire + driver) by k; capacitances fixed."""
    import dataclasses

    nodes = []
    for n in tree.nodes:
        if n.kind is NodeKind.TERMINAL:
            t = dataclasses.replace(n.terminal, resistance=n.terminal.resistance * k)
            nodes.append(Node(n.index, n.x, n.y, n.kind, t))
        else:
            nodes.append(n)
    tree2 = RoutingTree(
        nodes,
        [tree.parent(i) for i in range(len(tree))],
        [tree.edge_length(i) for i in range(len(tree))],
    )
    tech2 = Technology(tech.unit_resistance * k, tech.unit_capacitance)
    return tree2, tech2


@given(
    seed=st.integers(0, 10_000),
    delta=st.floats(min_value=0.0, max_value=1000.0),
)
@settings(max_examples=40, deadline=None)
def test_ard_shift_covariance(seed, delta):
    """Adding D to every source arrival adds exactly D to the ARD."""
    rng = np.random.default_rng(seed)
    t = random_topology(rng, n_terminals=5)
    base = ard(t, TECH).value
    shifted = ard(shifted_alphas(t, delta), TECH).value
    assert shifted == pytest.approx(base + delta, rel=1e-9, abs=1e-6)


@given(seed=st.integers(0, 10_000), k=st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=40, deadline=None)
def test_pure_rc_delay_scales_with_resistance(seed, k):
    """With zero boundary times, scaling every resistance by k scales the
    whole RC diameter by k (Elmore bilinearity)."""
    rng = np.random.default_rng(seed)
    t = random_topology(rng, n_terminals=4, p_insertion=0.0)
    # zero out alphas/betas, keep roles
    import dataclasses

    nodes = []
    for n in t.nodes:
        if n.kind is NodeKind.TERMINAL:
            term = dataclasses.replace(
                n.terminal,
                arrival_time=0.0 if n.terminal.is_source else n.terminal.arrival_time,
                downstream_delay=0.0
                if n.terminal.is_sink
                else n.terminal.downstream_delay,
                intrinsic_delay=0.0,
            )
            nodes.append(Node(n.index, n.x, n.y, n.kind, term))
        else:
            nodes.append(n)
    t = RoutingTree(
        nodes,
        [t.parent(i) for i in range(len(t))],
        [t.edge_length(i) for i in range(len(t))],
    )
    base = ard(t, TECH).value
    t2, tech2 = scaled_resistances(t, TECH, k)
    assert ard(t2, tech2).value == pytest.approx(k * base, rel=1e-9)


@given(seed=st.integers(0, 5_000))
@settings(max_examples=15, deadline=None)
def test_bigger_library_never_hurts(seed):
    """A superset repeater library yields a frontier at least as good at
    every cost (the DP is exact, so more options cannot hurt)."""
    rng = np.random.default_rng(seed)
    t = random_topology(rng, n_terminals=4, p_insertion=0.7)
    small = insert_repeaters(t, TECH, MSRIOptions(library=RepeaterLibrary([REP])))
    big = insert_repeaters(
        t, TECH, MSRIOptions(library=RepeaterLibrary([REP, BIG]))
    )
    for cost, ardv in small.tradeoff():
        best = min(s.ard for s in big.solutions if s.cost <= cost + 1e-9)
        assert best <= ardv + 1e-6


@given(seed=st.integers(0, 5_000))
@settings(max_examples=20, deadline=None)
def test_repeater_assignment_never_below_buffered_floor(seed):
    """Every frontier diameter is bounded below by the cost-oblivious
    optimum (the last frontier entry), and above by the unbuffered ARD."""
    rng = np.random.default_rng(seed)
    t = random_topology(rng, n_terminals=4, p_insertion=0.6)
    res = insert_repeaters(t, TECH, MSRIOptions(library=RepeaterLibrary([REP])))
    unbuffered = ard(t, TECH).value
    floor = res.min_ard().ard
    for s in res.solutions:
        assert floor - 1e-9 <= s.ard <= unbuffered + 1e-9


@given(
    length=st.floats(min_value=1.0, max_value=5000.0),
    split=st.floats(min_value=0.05, max_value=0.95),
    load=st.floats(min_value=0.0, max_value=5.0),
)
@settings(max_examples=100)
def test_wire_delay_split_invariance(length, split, load):
    """Splitting a uniform wire at any point preserves its Elmore delay:
    the identity that makes insertion-point subdivision electrically
    neutral."""
    l1 = length * split
    l2 = length - l1
    c2 = TECH.wire_capacitance(l2)
    whole = TECH.wire_delay(length, load)
    far = TECH.wire_delay(l2, load)
    near = TECH.wire_delay(l1, c2 + load)
    assert near + far == pytest.approx(whole, rel=1e-9)


@given(seed=st.integers(0, 10_000), spacing=st.floats(200.0, 2000.0))
@settings(max_examples=25, deadline=None)
def test_insertion_points_preserve_ard(seed, spacing):
    """Threading candidate insertion points into the wires never changes
    the unbuffered ARD (they are electrically invisible until used)."""
    from repro.steiner import add_insertion_points

    rng = np.random.default_rng(seed)
    t = random_topology(rng, n_terminals=5, p_insertion=0.0)
    base = ard(t, TECH).value
    subdivided = add_insertion_points(t, spacing)
    assert ard(subdivided, TECH).value == pytest.approx(base, rel=1e-9)


@given(
    r=st.floats(1.0, 100.0),
    c=st.floats(0.01, 5.0),
    split=st.floats(0.05, 0.95),
)
@settings(max_examples=80)
def test_augment_split_invariance(r, c, split):
    """The DP's Fig. 10 combinator obeys the same wire-splitting identity:
    augmenting by two sub-wires equals augmenting by the whole wire, in
    every solution coordinate."""
    from repro.core.solution import augment_wire, leaf_solution
    from repro.tech import Terminal

    c_max = 100.0
    leaf = leaf_solution(
        Terminal("t", 0, 0, downstream_delay=5.0, capacitance=0.3,
                 resistance=120.0),
        c_max,
    )
    whole = augment_wire(leaf, r, c, c_max)
    # near segment carries (1-split) of the wire, far segment `split`
    far = augment_wire(leaf, r * split, c * split, c_max)
    both = augment_wire(far, r * (1 - split), c * (1 - split), c_max)
    assert both.cap == pytest.approx(whole.cap, rel=1e-9)
    assert both.q == pytest.approx(whole.q, rel=1e-9)
    for x in (0.0, 1.0, 10.0, 50.0):
        assert both.arr.evaluate(x) == pytest.approx(
            whole.arr.evaluate(x), rel=1e-9
        )


coeff = st.floats(min_value=-20, max_value=20, allow_nan=False)


@given(a=coeff, b=coeff, c1=st.floats(0, 5), c2=st.floats(0, 5))
@settings(max_examples=100)
def test_pwl_shift_composes(a, b, c1, c2):
    f = PWL.linear(a, b, 0.0, 50.0)
    g = f.shift(c1).shift(c2)
    h = f.shift(c1 + c2)
    assert g.approx_equal(h, atol=1e-7)


@given(a=coeff, b=coeff, s1=coeff, s2=coeff)
@settings(max_examples=100)
def test_pwl_add_linear_composes(a, b, s1, s2):
    f = PWL.linear(a, b, 0.0, 50.0)
    g = f.add_linear(1.0, s1).add_linear(2.0, s2)
    h = f.add_linear(3.0, s1 + s2)
    assert g.approx_equal(h, atol=1e-6)


@given(a=coeff, b=coeff, c=st.floats(0, 10), s=coeff)
@settings(max_examples=100)
def test_pwl_shift_and_add_commute(a, b, c, s):
    """shift(c) then +s*x equals (+s*x then shift) adjusted by s*c —
    the identity the augment combinator silently relies on."""
    f = PWL.linear(a, b, 0.0, 50.0)
    left = f.shift(c).add_linear(0.0, s)
    right = f.add_linear(0.0, s).shift(c).add_linear(-s * c, 0.0)
    assert left.approx_equal(right, atol=1e-6)
