"""End-to-end tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def net_path(tmp_path):
    path = str(tmp_path / "net.json")
    assert main(["generate", "--seed", "3", "--pins", "5", "-o", path]) == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestGenerate:
    def test_creates_valid_json(self, net_path):
        with open(net_path) as fh:
            data = json.load(fh)
        assert data["schema"] == 1
        kinds = [n["kind"] for n in data["nodes"]]
        assert kinds.count("terminal") == 5

    def test_spacing_zero_disables_insertion(self, tmp_path, capsys):
        path = str(tmp_path / "plain.json")
        main(["generate", "--seed", "1", "--pins", "4", "--spacing", "0", "-o", path])
        out = capsys.readouterr().out
        assert "0 insertion points" in out


class TestInfo:
    def test_info(self, net_path, capsys):
        assert main(["info", net_path]) == 0
        out = capsys.readouterr().out
        assert "terminals" in out
        assert "wirelength" in out


class TestArd:
    def test_plain(self, net_path, capsys):
        assert main(["ard", net_path]) == 0
        out = capsys.readouterr().out
        assert "ARD =" in out
        assert "critical pair" in out

    def test_with_assignment(self, net_path, tmp_path, capsys):
        asg = str(tmp_path / "asg.json")
        main(["optimize", net_path, "--spec", "1", "--save-assignment", asg])
        # spec of 1 ps is unachievable -> no assignment file written
        capsys.readouterr()
        assert main(["ard", net_path]) == 0


class TestOptimize:
    def test_frontier_printed(self, net_path, capsys):
        assert main(["optimize", net_path]) == 0
        out = capsys.readouterr().out
        assert "trade-off" in out
        assert "repeaters" in out

    def test_sizing_mode(self, net_path, capsys):
        assert main(["optimize", net_path, "--mode", "sizing"]) == 0
        out = capsys.readouterr().out
        assert "sizing mode" in out

    def test_both_mode(self, net_path, capsys):
        assert main(["optimize", net_path, "--mode", "both"]) == 0

    def test_spec_achievable_saves_assignment(self, net_path, tmp_path, capsys):
        asg = str(tmp_path / "asg.json")
        rc = main(
            ["optimize", net_path, "--spec", "1e9", "--save-assignment", asg]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "min-cost solution meeting" in out
        with open(asg) as fh:
            json.load(fh)  # valid JSON

    def test_spec_unachievable_exits_nonzero(self, net_path, capsys):
        assert main(["optimize", net_path, "--spec", "1"]) == 1
        out = capsys.readouterr().out
        assert "not achievable" in out

    def test_roundtrip_assignment_improves_ard(self, net_path, tmp_path, capsys):
        asg = str(tmp_path / "asg.json")
        main(["optimize", net_path, "--spec", "1e9", "--save-assignment", asg])
        capsys.readouterr()
        assert main(["ard", net_path, "--assignment", asg]) == 0


class TestOptimizePruningKnobs:
    def _frontier(self, capsys):
        # drop the title line: it embeds the (run-varying) runtime
        out = capsys.readouterr().out
        return [ln for ln in out.splitlines() if "trade-off" not in ln]

    def test_exact_knobs_do_not_change_the_frontier(self, net_path, capsys):
        assert main(["optimize", net_path]) == 0
        base = self._frontier(capsys)
        assert main(["optimize", net_path, "--no-prefilter"]) == 0
        assert self._frontier(capsys) == base
        rc = main(
            [
                "optimize", net_path,
                "--max-front-width", "8",
                "--max-pwl-segments", "4",
            ]
        )
        assert rc == 0
        assert self._frontier(capsys) == base

    def test_lossy_cap_runs(self, net_path, capsys):
        rc = main(
            ["optimize", net_path, "--max-front-width", "4", "--lossy"]
        )
        assert rc == 0
        assert "trade-off" in capsys.readouterr().out

    def test_lossy_without_cap_rejected(self, net_path):
        with pytest.raises(ValueError, match="lossy"):
            main(["optimize", net_path, "--lossy"])


class TestRender:
    def test_render(self, net_path, capsys):
        assert main(["render", net_path]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_render_svg(self, net_path, tmp_path, capsys):
        import xml.etree.ElementTree as ET

        svg = str(tmp_path / "net.svg")
        assert main(["render", net_path, "--svg", svg]) == 0
        assert ET.parse(svg).getroot().tag.endswith("svg")


class TestSynthesize:
    def test_seeded_synthesis(self, tmp_path, capsys):
        out_path = str(tmp_path / "synth.json")
        rc = main(["synthesize", "--seed", "1", "--pins", "5", "-o", out_path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "synthesized topology" in out
        assert main(["info", out_path]) == 0

    def test_points_file(self, tmp_path, capsys):
        pts = tmp_path / "pts.txt"
        pts.write_text("0 0\n5000 0  # right edge\n\n2500 4000\n")
        out_path = str(tmp_path / "synth.json")
        rc = main(
            ["synthesize", "--points", str(pts), "--spacing", "0", "-o", out_path]
        )
        assert rc == 0
        with open(out_path) as fh:
            data = json.load(fh)
        kinds = [n["kind"] for n in data["nodes"]]
        assert kinds.count("terminal") == 3
        assert kinds.count("insertion") == 0

    def test_points_file_validation(self, tmp_path):
        pts = tmp_path / "bad.txt"
        pts.write_text("1 2 3\n")
        with pytest.raises(ValueError, match="expected 'x y'"):
            main(["synthesize", "--points", str(pts), "-o", str(tmp_path / "o.json")])

    def test_points_file_too_few(self, tmp_path):
        pts = tmp_path / "one.txt"
        pts.write_text("1 2\n")
        with pytest.raises(ValueError, match="two points"):
            main(["synthesize", "--points", str(pts), "-o", str(tmp_path / "o.json")])


class TestCampaign:
    def test_tiny_campaign(self, tmp_path, capsys):
        out_path = str(tmp_path / "campaign.json")
        rc = main(
            ["campaign", "--seeds", "1", "--sizes", "4", "-o", out_path]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign saved" in out
        assert "Table II" in out
        with open(out_path) as fh:
            data = json.load(fh)
        assert len(data["results"]) == 1

    def test_campaign_workers_and_resume(self, tmp_path, capsys):
        out_path = str(tmp_path / "campaign.json")
        argv = ["campaign", "--seeds", "1", "--sizes", "4", "--workers", "2",
                "-o", out_path]
        assert main(argv) == 0
        assert (tmp_path / "campaign.json.checkpoint.jsonl").exists()
        capsys.readouterr()

        # resuming a finished sweep executes nothing and still reports
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "[1/1]" not in out  # no job re-ran
        assert "campaign saved" in out
        with open(out_path) as fh:
            data = json.load(fh)
        assert data["schema"] == 3
        assert data["workers"] == 2
        assert data["failures"] == []

    def test_campaign_spacings_axis(self, tmp_path):
        out_path = str(tmp_path / "campaign.json")
        rc = main(
            ["campaign", "--seeds", "1", "--sizes", "4",
             "--spacings", "600", "1200", "-o", out_path]
        )
        assert rc == 0
        with open(out_path) as fh:
            data = json.load(fh)
        assert sorted(r["spacing"] for r in data["results"]) == [600.0, 1200.0]
