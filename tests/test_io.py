"""Round-trip tests for JSON serialization."""

import json
import math

import numpy as np
import pytest

from repro.core.ard import ard
from repro.rctree import EvalContext
from repro.io import (
    SCHEMA_VERSION,
    assignment_from_dict,
    assignment_to_dict,
    load_tree,
    repeater_from_dict,
    repeater_to_dict,
    save_tree,
    technology_from_dict,
    technology_to_dict,
    tree_from_dict,
    tree_to_dict,
)
from repro.tech import Buffer, Repeater, Technology

from .conftest import random_topology, y_net

TECH = Technology(0.1, 0.01, name="test")


def trees_equal(a, b):
    if len(a) != len(b) or a.root != b.root:
        return False
    for i in range(len(a)):
        na, nb = a.node(i), b.node(i)
        if (na.kind, na.x, na.y) != (nb.kind, nb.x, nb.y):
            return False
        if na.terminal != nb.terminal:
            return False
        if a.parent(i) != b.parent(i) or a.edge_length(i) != b.edge_length(i):
            return False
    return True


class TestTreeRoundTrip:
    def test_y_net(self):
        t = y_net()
        assert trees_equal(t, tree_from_dict(tree_to_dict(t)))

    @pytest.mark.parametrize("seed", range(8))
    def test_random_topologies(self, seed):
        rng = np.random.default_rng(seed)
        t = random_topology(rng, n_terminals=6)
        t2 = tree_from_dict(tree_to_dict(t))
        assert trees_equal(t, t2)
        # electrical equivalence too
        assert ard(t, TECH).value == pytest.approx(ard(t2, TECH).value)

    def test_never_sentinel_roundtrip(self):
        rng = np.random.default_rng(3)
        t = random_topology(rng, n_terminals=6)  # mixes roles via NEVER
        d = tree_to_dict(t)
        # the JSON itself must be serializable (no raw -inf)
        payload = json.dumps(d)
        t2 = tree_from_dict(json.loads(payload))
        for a, b in zip(t.terminals(), t2.terminals()):
            assert a.arrival_time == b.arrival_time
            assert a.downstream_delay == b.downstream_delay

    def test_file_roundtrip(self, tmp_path):
        t = y_net()
        path = tmp_path / "net.json"
        save_tree(t, str(path))
        assert trees_equal(t, load_tree(str(path)))

    def test_schema_version_checked(self):
        d = tree_to_dict(y_net())
        d["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            tree_from_dict(d)


class TestTechnologyRoundTrip:
    def test_roundtrip(self):
        t = Technology(0.076, 0.000118, name="x", extras={"a": 1.0})
        t2 = technology_from_dict(technology_to_dict(t))
        assert t2 == t


class TestRepeaterRoundTrip:
    def test_symmetric(self):
        r = Repeater.from_buffer_pair(Buffer("b", 20, 50, 0.25), name="rep")
        assert repeater_from_dict(repeater_to_dict(r)) == r

    def test_asymmetric_oriented(self):
        r = Repeater.from_buffer_pair(
            Buffer("f", 10, 80, 0.1), Buffer("g", 30, 40, 0.3), name="asym"
        ).reversed()
        r2 = repeater_from_dict(repeater_to_dict(r))
        assert (r2.d_ab, r2.r_ab, r2.c_a) == (r.d_ab, r.r_ab, r.c_a)
        assert (r2.d_ba, r2.r_ba, r2.c_b) == (r.d_ba, r.r_ba, r.c_b)

    def test_assignment_roundtrip(self):
        r = Repeater.from_buffer_pair(Buffer("b", 20, 50, 0.25), name="rep")
        asg = {3: r, 7: r.reversed()}
        payload = json.dumps(assignment_to_dict(asg))
        back = assignment_from_dict(json.loads(payload))
        assert set(back) == {3, 7}
        assert back[3].c_a == r.c_a

    def test_assignment_preserves_ard(self):
        """Electrical round-trip: the restored assignment computes the same
        ARD as the original on the restored tree."""
        from repro.core.msri import MSRIOptions, insert_repeaters
        from repro.tech import RepeaterLibrary

        rng = np.random.default_rng(11)
        t = random_topology(rng, n_terminals=5, p_insertion=0.8)
        lib = RepeaterLibrary(
            [Repeater.from_buffer_pair(Buffer("b", 20, 50, 0.25), name="rep")]
        )
        best = insert_repeaters(t, TECH, MSRIOptions(library=lib)).min_ard()
        reps = {k: v for k, v in best.assignment().items() if isinstance(v, Repeater)}
        t2 = tree_from_dict(json.loads(json.dumps(tree_to_dict(t))))
        asg2 = assignment_from_dict(
            json.loads(json.dumps(assignment_to_dict(reps)))
        )
        assert ard(t2, TECH, context=EvalContext(assignment=asg2)).value == pytest.approx(best.ard)
