"""Unit tests for the driver-sizing option model."""

import pytest

from repro.core.driver_sizing import DriverOption, make_driver_options
from repro.tech import Buffer, Terminal

BASE = Buffer("1x", intrinsic_delay=50.0, output_resistance=400.0,
              input_capacitance=0.05)


class TestDriverOption:
    def test_validation(self):
        with pytest.raises(ValueError):
            DriverOption("bad", 1.0, 0.05, 0.0, 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            DriverOption("bad", -1.0, 0.05, 100.0, 0.0, 0.0, 0.0)

    def test_applied_to_replaces_electricals(self):
        opt = DriverOption("o", 3.0, 0.1, 200.0, 25.0, 20.0, 130.0)
        term = Terminal("t", 0, 0, arrival_time=5.0, downstream_delay=7.0,
                        capacitance=0.9, resistance=999.0)
        sized = opt.applied_to(term)
        assert sized.capacitance == 0.1
        assert sized.resistance == 200.0
        assert sized.intrinsic_delay == 25.0
        assert sized.arrival_time == pytest.approx(25.0)   # 5 + 20
        assert sized.downstream_delay == pytest.approx(137.0)  # 7 + 130

    def test_applied_to_respects_roles(self):
        opt = DriverOption("o", 3.0, 0.1, 200.0, 25.0, 20.0, 130.0)
        src = Terminal("s", 0, 0).as_source_only()
        sized = opt.applied_to(src)
        # beta stays NEVER: adding a penalty to -inf would corrupt the role
        assert not sized.is_sink
        snk = Terminal("k", 0, 0).as_sink_only()
        assert not opt.applied_to(snk).is_source


class TestMakeDriverOptions:
    def test_grid_size(self):
        assert len(make_driver_options(BASE, scales=(1.0, 2.0))) == 4
        assert len(make_driver_options(BASE)) == 16

    def test_option_parameters_follow_scaling(self):
        opts = make_driver_options(
            BASE, scales=(1.0, 2.0),
            prev_stage_resistance=400.0, next_stage_capacitance=0.2,
        )
        by_name = {o.name: o for o in opts}
        o12 = by_name["drv:1x@1x/rcv:1x@2x"]
        # driver 1X: resistance 400, prev-stage penalty 400*0.05 = 20
        assert o12.driver_resistance == 400.0
        assert o12.arrival_penalty == pytest.approx(20.0)
        # receiver 2X: cap 0.1, next-stage 50 + 200*0.2 = 90
        assert o12.net_capacitance == pytest.approx(0.1)
        assert o12.sink_delay_extra == pytest.approx(90.0)
        assert o12.cost == pytest.approx(3.0)

    def test_bigger_driver_lower_resistance_higher_penalty(self):
        opts = make_driver_options(BASE, scales=(1.0, 4.0))
        o1 = next(o for o in opts if o.name == "drv:1x@1x/rcv:1x@1x")
        o4 = next(o for o in opts if o.name == "drv:1x@4x/rcv:1x@1x")
        assert o4.driver_resistance < o1.driver_resistance
        assert o4.arrival_penalty > o1.arrival_penalty
        assert o4.cost > o1.cost

    def test_boundary_validation(self):
        with pytest.raises(ValueError):
            make_driver_options(BASE, prev_stage_resistance=-1.0)
