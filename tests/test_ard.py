"""Tests for the linear-time ARD algorithm (paper Fig. 2).

The central property: on any topology, with any repeater assignment, the
O(n) algorithm must agree exactly with the O(n^2) brute force that runs one
source-to-sink Elmore walk per pair.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ard import ard, compute_ard
from repro.rctree import ElmoreAnalyzer, EvalContext, TreeBuilder
from repro.tech import Buffer, Repeater, Technology, Terminal

from .conftest import make_terminal, random_topology, two_pin_net, y_net

TECH = Technology(unit_resistance=0.1, unit_capacitance=0.01, name="test")
REP = Repeater.from_buffer_pair(
    Buffer("b", intrinsic_delay=20.0, output_resistance=50.0, input_capacitance=0.25),
    name="rep",
)
ASYM_REP = Repeater.from_buffer_pair(
    Buffer("f", intrinsic_delay=10.0, output_resistance=80.0, input_capacitance=0.1),
    Buffer("g", intrinsic_delay=30.0, output_resistance=40.0, input_capacitance=0.3),
    name="asym",
)


def random_assignment(rng, tree, p=0.5):
    """Random repeater assignment with random orientations."""
    out = {}
    for idx in tree.insertion_indices():
        roll = rng.random()
        if roll < p / 2:
            out[idx] = ASYM_REP
        elif roll < p:
            out[idx] = ASYM_REP.reversed()
    return out


class TestAgainstBruteForce:
    def test_y_net(self):
        t = y_net()
        an = ElmoreAnalyzer(t, TECH)
        assert compute_ard(an).value == pytest.approx(an.ard_bruteforce())

    def test_two_pin_with_repeater(self):
        t = two_pin_net()
        m = t.insertion_indices()[0]
        an = ElmoreAnalyzer(t, TECH, context=EvalContext(assignment={m: REP}))
        res = compute_ard(an)
        assert res.value == pytest.approx(an.ard_bruteforce())

    @pytest.mark.parametrize("seed", range(20))
    def test_random_topologies(self, seed):
        rng = np.random.default_rng(seed)
        t = random_topology(rng, n_terminals=int(rng.integers(2, 9)))
        assignment = random_assignment(rng, t)
        an = ElmoreAnalyzer(t, TECH, context=EvalContext(assignment=assignment))
        res = compute_ard(an)
        brute = an.ard_bruteforce()
        assert res.value == pytest.approx(brute, rel=1e-9)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_with_companion_cap(self, seed):
        rng = np.random.default_rng(100 + seed)
        t = random_topology(rng, n_terminals=6)
        assignment = random_assignment(rng, t, p=0.8)
        an = ElmoreAnalyzer(t, TECH, context=EvalContext(assignment=assignment, include_companion_cap=True))
        assert compute_ard(an).value == pytest.approx(an.ard_bruteforce(), rel=1e-9)

    def test_critical_pair_matches_bruteforce(self):
        rng = np.random.default_rng(42)
        for _ in range(10):
            t = random_topology(rng, n_terminals=7)
            an = ElmoreAnalyzer(t, TECH, context=EvalContext(assignment=random_assignment(rng, t)))
            res = compute_ard(an)
            bu, bv, bd = an.critical_pair()
            assert res.value == pytest.approx(bd)
            # the argmax pair must actually achieve the ARD (pair itself may
            # differ under exact ties)
            assert an.augmented_delay(res.source, res.sink) == pytest.approx(bd)


class TestRootIndependence:
    @pytest.mark.parametrize("seed", range(8))
    def test_any_terminal_root_gives_same_ard(self, seed):
        rng = np.random.default_rng(200 + seed)
        t = random_topology(rng, n_terminals=6, p_insertion=0.0)
        reference = ard(t, TECH).value
        for idx in t.terminal_indices():
            res = ard(t.rerooted(idx), TECH)
            assert res.value == pytest.approx(reference, rel=1e-9)


class TestRolesAndDegenerateNets:
    def test_single_source_net(self):
        b = TreeBuilder()
        s = b.add_terminal(make_terminal("s", 0, 0).as_source_only())
        k1 = b.add_terminal(make_terminal("k1", 500, 0).as_sink_only())
        k2 = b.add_terminal(make_terminal("k2", 0, 500).as_sink_only())
        j = b.add_steiner(0, 0)
        b.connect(s, j)
        b.connect(j, k1)
        b.connect(j, k2)
        t = b.build(root=s)
        an = ElmoreAnalyzer(t, TECH)
        res = compute_ard(an)
        assert res.value == pytest.approx(an.ard_bruteforce())
        assert res.source == t.terminal_by_name("s")

    def test_no_source_gives_minus_inf(self):
        b = TreeBuilder()
        k1 = b.add_terminal(make_terminal("k1", 0, 0).as_sink_only())
        k2 = b.add_terminal(make_terminal("k2", 500, 0).as_sink_only())
        b.connect(k1, k2)
        t = b.build(root=k1)
        res = ard(t, TECH)
        assert res.value == -math.inf
        assert not res.is_finite

    def test_no_sink_gives_minus_inf(self):
        b = TreeBuilder()
        s1 = b.add_terminal(make_terminal("s1", 0, 0).as_source_only())
        s2 = b.add_terminal(make_terminal("s2", 500, 0).as_source_only())
        b.connect(s1, s2)
        t = b.build(root=s1)
        assert not ard(t, TECH).is_finite

    def test_alpha_beta_shift_ard(self):
        """Raising one source's arrival time by D raises ARD by <= D, with
        equality when that source is critical."""
        t = y_net()
        base = ard(t, TECH)
        crit_name = t.node(base.source).terminal.name

        b = TreeBuilder()
        for name, x, y in [("a", 0, 0), ("b", 200, 0), ("c", 100, 100)]:
            alpha = 500.0 if name == crit_name else 0.0
            b.add_terminal(make_terminal(name, x, y, alpha=alpha))
        s = b.add_steiner(100, 0)
        b.connect(0, s)
        b.connect(s, 1)
        b.connect(s, 2)
        t2 = b.build(root=0)
        assert ard(t2, TECH).value == pytest.approx(base.value + 500.0)


class TestRepeaterOrientationMatters:
    def test_asymmetric_repeater_orientation_changes_ard(self):
        t = two_pin_net(length=4000.0)
        m = t.insertion_indices()[0]
        # make one terminal source-only so the two orientations differ
        fwd = ard(t, TECH, context=EvalContext(assignment={m: ASYM_REP})).value
        rev = ard(t, TECH, context=EvalContext(assignment={m: ASYM_REP.reversed()})).value
        # both must match brute force regardless
        an_f = ElmoreAnalyzer(t, TECH, context=EvalContext(assignment={m: ASYM_REP}))
        an_r = ElmoreAnalyzer(t, TECH, context=EvalContext(assignment={m: ASYM_REP.reversed()}))
        assert fwd == pytest.approx(an_f.ard_bruteforce())
        assert rev == pytest.approx(an_r.ard_bruteforce())

    def test_symmetric_repeater_orientation_irrelevant(self):
        t = two_pin_net(length=4000.0)
        m = t.insertion_indices()[0]
        assert ard(t, TECH, context=EvalContext(assignment={m: REP})).value == pytest.approx(
            ard(t, TECH, context=EvalContext(assignment={m: REP.reversed()})).value
        )


class TestTimingTable:
    def test_leaf_timing_entries(self):
        t = y_net()
        an = ElmoreAnalyzer(t, TECH)
        res = compute_ard(an)
        b_idx = t.terminal_by_name("b")
        tb = res.timing[b_idx]
        assert tb.required == 0.0  # beta = 0
        assert tb.required_sink == b_idx
        assert tb.diameter == -math.inf
        # leaf arrival includes the driver delay into the whole net
        assert tb.arrival == pytest.approx(100.0 * 4.5)

    def test_root_diameter_is_ard(self):
        t = y_net()
        res = compute_ard(ElmoreAnalyzer(t, TECH))
        assert res.timing[t.root].diameter == res.value


# -- hypothesis: the linear/quadratic agreement under many shapes -------------


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=2, max_value=10),
    p_ins=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_property_linear_equals_bruteforce(seed, n, p_ins):
    rng = np.random.default_rng(seed)
    t = random_topology(rng, n_terminals=n, p_insertion=p_ins)
    assignment = random_assignment(rng, t, p=0.6)
    an = ElmoreAnalyzer(t, TECH, context=EvalContext(assignment=assignment))
    assert compute_ard(an).value == pytest.approx(an.ard_bruteforce(), rel=1e-9)
