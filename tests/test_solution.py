"""Unit tests for the DP solution characterization and its combinators."""

import math

import pytest

from repro.core.intervals import IntervalSet
from repro.core.pwl import PWL
from repro.core.solution import (
    Placement,
    Solution,
    Trace,
    apply_repeater,
    augment_wire,
    evaluate_at_root,
    join,
    leaf_solution,
)
from repro.tech import NEVER, Buffer, Repeater, Terminal

C_MAX = 100.0


def term(name="t", alpha=0.0, beta=0.0, cap=0.5, res=100.0, intrinsic=0.0):
    return Terminal(
        name=name,
        x=0,
        y=0,
        arrival_time=alpha,
        downstream_delay=beta,
        capacitance=cap,
        resistance=res,
        intrinsic_delay=intrinsic,
    )


REP = Repeater.from_buffer_pair(
    Buffer("b", intrinsic_delay=20.0, output_resistance=50.0, input_capacitance=0.25),
    name="rep",
)


class TestTrace:
    def test_empty(self):
        assert Trace().collect() == []

    def test_extended(self):
        t = Trace().extended(Placement(3, "x")).extended(Placement(5, "y"))
        got = {p.node: p.what for p in t.collect()}
        assert got == {3: "x", 5: "y"}

    def test_merged_shares(self):
        a = Trace().extended(Placement(1, "a"))
        b = Trace().extended(Placement(2, "b"))
        m = Trace.merged(a, b)
        assert {p.node for p in m.collect()} == {1, 2}

    def test_diamond_dedup(self):
        shared = Trace().extended(Placement(1, "a"))
        m = Trace.merged(shared, shared)
        assert len(m.collect()) == 1


class TestLeafSolution:
    def test_bidirectional(self):
        s = leaf_solution(term(alpha=10.0, beta=7.0), C_MAX)
        assert s.cap == 0.5
        assert s.q == 7.0
        assert s.has_source and s.has_sink
        # arr(cE) = alpha + r*(c + cE) = 10 + 100*0.5 + 100*cE
        assert s.arr.evaluate(0.0) == pytest.approx(60.0)
        assert s.arr.evaluate(1.0) == pytest.approx(160.0)
        assert s.diam is None
        assert s.domain == IntervalSet.single(0.0, C_MAX)

    def test_intrinsic_delay_enters_arrival(self):
        s = leaf_solution(term(intrinsic=9.0), C_MAX)
        assert s.arr.evaluate(0.0) == pytest.approx(9.0 + 50.0)

    def test_sink_only(self):
        s = leaf_solution(term(beta=5.0).as_sink_only(), C_MAX)
        assert s.arr is None
        assert s.q == 5.0

    def test_source_only(self):
        s = leaf_solution(term().as_source_only(), C_MAX)
        assert s.q == NEVER
        assert s.arr is not None

    def test_cost_passthrough(self):
        s = leaf_solution(term(), C_MAX, cost=3.0)
        assert s.cost == 3.0

    def test_invariants(self):
        leaf_solution(term(), C_MAX).check_invariants()


class TestAugmentWire:
    def test_scalars(self):
        s = leaf_solution(term(beta=10.0), C_MAX)
        a = augment_wire(s, resistance=10.0, capacitance=2.0, c_max=C_MAX)
        assert a.cap == pytest.approx(2.5)
        # q + R*(C/2 + cap) = 10 + 10*(1 + 0.5)
        assert a.q == pytest.approx(25.0)
        assert a.cost == s.cost

    def test_arrival_shift_and_slope(self):
        s = leaf_solution(term(), C_MAX)
        a = augment_wire(s, 10.0, 2.0, C_MAX)
        # arr'(x) = arr(x + 2) + 10*(1 + x) = [50 + 100*(x+2)] + 10 + 10x
        assert a.arr.evaluate(0.0) == pytest.approx(50.0 + 200.0 + 10.0)
        assert a.arr.evaluate(1.0) == pytest.approx(50.0 + 300.0 + 20.0)

    def test_zero_length_wire_is_identity_on_functions(self):
        s = leaf_solution(term(), C_MAX)
        a = augment_wire(s, 0.0, 0.0, C_MAX)
        assert a.arr.approx_equal(s.arr)
        assert a.q == s.q and a.cap == s.cap

    def test_domain_shrinks(self):
        s = leaf_solution(term(), C_MAX)
        a = augment_wire(s, 1.0, 30.0, C_MAX)
        assert a.domain == IntervalSet.single(0.0, C_MAX - 30.0)

    def test_rejects_negative(self):
        s = leaf_solution(term(), C_MAX)
        with pytest.raises(ValueError):
            augment_wire(s, -1.0, 0.0, C_MAX)

    def test_none_when_domain_vanishes(self):
        s = leaf_solution(term(), C_MAX)
        assert augment_wire(s, 1.0, C_MAX + 1.0, C_MAX) is None

    def test_never_q_stays_never(self):
        s = leaf_solution(term().as_source_only(), C_MAX)
        a = augment_wire(s, 10.0, 2.0, C_MAX)
        assert a.q == NEVER


class TestJoin:
    def test_scalar_combination(self):
        s1 = leaf_solution(term("a", beta=10.0), C_MAX)
        s2 = leaf_solution(term("b", beta=30.0, cap=0.2), C_MAX)
        j = join(s1, s2, C_MAX)
        assert j.cap == pytest.approx(0.7)
        assert j.q == 30.0
        assert j.cost == 0.0

    def test_arrival_sees_sibling_cap(self):
        s1 = leaf_solution(term("a"), C_MAX)
        s2 = leaf_solution(term("b", cap=0.2, res=1000.0), C_MAX)
        j = join(s1, s2, C_MAX)
        # at cE=0 the a-side source sees sibling cap 0.2:
        # max( arr1(0.2), arr2(0.5) ) = max(50+100*0.2, 0.2*1000+1000*0.5)
        assert j.arr.evaluate(0.0) == pytest.approx(max(70.0, 700.0))

    def test_cross_pairs_create_diameter(self):
        s1 = leaf_solution(term("a", beta=11.0), C_MAX)
        s2 = leaf_solution(term("b", beta=3.0, cap=0.2), C_MAX)
        j = join(s1, s2, C_MAX)
        assert j.diam is not None
        # at cE: candidates arr1(cE+0.2)+q2 and arr2(cE+0.5)+q1
        a1 = s1.arr.evaluate(0.2) + 3.0
        a2 = s2.arr.evaluate(0.5) + 11.0
        assert j.diam.evaluate(0.0) == pytest.approx(max(a1, a2))

    def test_join_sink_only_sides_has_no_diam(self):
        s1 = leaf_solution(term("a").as_sink_only(), C_MAX)
        s2 = leaf_solution(term("b").as_sink_only(), C_MAX)
        j = join(s1, s2, C_MAX)
        assert j.diam is None and j.arr is None
        assert j.q == 0.0

    def test_join_source_and_sink(self):
        s1 = leaf_solution(term("a", beta=5.0).as_sink_only(), C_MAX)
        s2 = leaf_solution(term("b").as_source_only(), C_MAX)
        j = join(s1, s2, C_MAX)
        assert j.diam is not None  # b -> a pairs exist
        assert j.arr is not None

    def test_domain_intersection(self):
        s1 = leaf_solution(term("a"), C_MAX)
        s2 = leaf_solution(term("b", cap=0.2), C_MAX)
        j = join(s1, s2, C_MAX)
        # shifted by each other's caps: [0, C_MAX - 0.2] n [0, C_MAX - 0.5]
        assert j.domain == IntervalSet.single(0.0, C_MAX - 0.5)

    def test_trace_merged(self):
        s1 = leaf_solution(term("a"), C_MAX).trace.extended(Placement(1, "x"))
        sol1 = Solution(0, 0.1, 0, None, None, IntervalSet.single(0, C_MAX), s1)
        sol2 = leaf_solution(term("b"), C_MAX)
        j = join(sol1, sol2, C_MAX)
        assert {p.node for p in j.trace.collect()} == {1}


class TestApplyRepeater:
    def test_decoupling(self):
        s = leaf_solution(term(beta=10.0), C_MAX)
        b = apply_repeater(s, REP, node=7, c_max=C_MAX)
        assert b.cap == REP.c_a
        assert b.cost == REP.cost
        # q' = d_ab + r_ab*cap + q = 20 + 50*0.5 + 10
        assert b.q == pytest.approx(55.0)
        # arr' = arr(c_b) + d_ba + r_ba*cE
        expected0 = s.arr.evaluate(0.25) + 20.0
        assert b.arr.evaluate(0.0) == pytest.approx(expected0)
        assert b.arr.evaluate(1.0) == pytest.approx(expected0 + 50.0)
        assert b.domain == IntervalSet.single(0.0, C_MAX)

    def test_diam_freezes(self):
        s1 = leaf_solution(term("a", beta=11.0), C_MAX)
        s2 = leaf_solution(term("b", beta=3.0, cap=0.2), C_MAX)
        j = join(s1, s2, C_MAX)
        b = apply_repeater(j, REP, node=9, c_max=C_MAX)
        frozen = j.diam.evaluate(REP.c_b)
        assert b.diam.num_segments == 1
        assert b.diam.evaluate(0.0) == frozen
        assert b.diam.evaluate(50.0) == frozen

    def test_skips_solution_pruned_at_cb(self):
        s = leaf_solution(term(), C_MAX)
        holey = s.restricted(IntervalSet.single(1.0, C_MAX))  # hole at c_b=0.25
        assert apply_repeater(holey, REP, node=1, c_max=C_MAX) is None

    def test_trace_records_placement(self):
        s = leaf_solution(term(), C_MAX)
        b = apply_repeater(s, REP, node=4, c_max=C_MAX)
        assert {p.node: p.what for p in b.trace.collect()} == {4: REP}


class TestEvaluateAtRoot:
    def test_root_as_source(self):
        s = leaf_solution(term("k", beta=10.0).as_sink_only(), C_MAX)
        a = augment_wire(s, 10.0, 2.0, C_MAX)
        root = term("r", alpha=5.0).as_source_only()
        rs = evaluate_at_root(a, 0, root)
        # alpha + r*(c_root + cap) + q = 5 + 100*(0.5+2.5) + 25
        assert rs.ard == pytest.approx(5.0 + 300.0 + 25.0)

    def test_root_as_sink(self):
        s = leaf_solution(term("s", alpha=0.0).as_source_only(), C_MAX)
        root = term("r", beta=8.0).as_sink_only()
        rs = evaluate_at_root(s, 0, root)
        # arr(c_root) + beta = [50 + 100*0.5] + 8
        assert rs.ard == pytest.approx(s.arr.evaluate(0.5) + 8.0)

    def test_no_pairs_returns_none(self):
        s = leaf_solution(term("s").as_source_only(), C_MAX)
        root = term("r").as_source_only()  # two sources, no sink
        assert evaluate_at_root(s, 0, root) is None

    def test_pruned_at_root_cap_returns_none(self):
        s = leaf_solution(term("s"), C_MAX).restricted(
            IntervalSet.single(10.0, C_MAX)
        )
        assert evaluate_at_root(s, 0, term("r")) is None

    def test_extra_cost_and_trace(self):
        s = leaf_solution(term("s"), C_MAX)
        rs = evaluate_at_root(
            s, 0, term("r"), extra_cost=4.0, trace_placement=Placement(0, "opt")
        )
        assert rs.cost == 4.0
        assert rs.assignment() == {0: "opt"}


class TestRestriction:
    def test_restricted_none_outside(self):
        s = leaf_solution(term(), C_MAX)
        assert s.restricted(IntervalSet.empty()) is None

    def test_restricted_same_returns_self(self):
        s = leaf_solution(term(), C_MAX)
        assert s.restricted(IntervalSet.single(0.0, C_MAX)) is s

    def test_restricted_keeps_uid(self):
        s = leaf_solution(term(), C_MAX)
        r = s.restricted(IntervalSet.single(1.0, 2.0))
        assert r.uid == s.uid
        r.check_invariants()
